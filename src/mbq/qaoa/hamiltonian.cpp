#include "mbq/qaoa/hamiltonian.h"

#include <algorithm>
#include <bit>
#include <map>
#include <set>
#include <utility>

#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/common/parallel.h"

namespace mbq::qaoa {

CostHamiltonian::CostHamiltonian(int num_qubits, real constant)
    : n_(num_qubits), constant_(constant) {
  MBQ_REQUIRE(num_qubits >= 1 && num_qubits <= 63,
              "qubit count out of range: " << num_qubits);
}

void CostHamiltonian::add_term(std::vector<int> support, real coeff) {
  // Repeated indices cancel pairwise (Z^2 = I).
  std::sort(support.begin(), support.end());
  std::vector<int> reduced;
  for (std::size_t i = 0; i < support.size();) {
    const int q = support[i];
    MBQ_REQUIRE(q >= 0 && q < n_, "term qubit out of range: " << q);
    std::size_t j = i;
    while (j < support.size() && support[j] == q) ++j;
    if ((j - i) % 2 == 1) reduced.push_back(q);
    i = j;
  }
  if (reduced.empty()) {
    constant_ += coeff;
    return;
  }
  // Terms are kept in canonical support order (size, then lexicographic):
  // merging is a binary search instead of a linear scan, and every
  // CostHamiltonian — whichever frontend built it, in whatever order —
  // stores, evaluates, and ENCODES its terms identically.  The spec
  // compiler (speccomp) relies on this invariant: canonical ordering is
  // established at construction, so no pass ever has to reorder terms
  // (which would perturb float-summation order between optimized and
  // unoptimized lowerings).
  const auto less = [](const IsingTerm& t, const std::vector<int>& s) {
    return t.support.size() != s.size() ? t.support.size() < s.size()
                                        : t.support < s;
  };
  const auto it = std::lower_bound(terms_.begin(), terms_.end(), reduced, less);
  if (it != terms_.end() && it->support == reduced) {
    it->coeff += coeff;
    return;
  }
  max_order_ = std::max(max_order_, static_cast<int>(reduced.size()));
  terms_.insert(it, {coeff, std::move(reduced)});
}

real CostHamiltonian::evaluate(std::uint64_t x) const {
  real c = constant_;
  for (const auto& t : terms_) {
    int par = 0;
    for (int q : t.support) par ^= get_bit(x, q);
    c += par ? -t.coeff : t.coeff;
  }
  return c;
}

std::vector<real> CostHamiltonian::cost_table() const {
  MBQ_REQUIRE(n_ <= 28, "cost table too large for n=" << n_);
  std::vector<real> table(std::size_t{1} << n_);
  // Precompute masks once; the per-x loop is the hot path.
  std::vector<std::uint64_t> masks(terms_.size());
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    std::uint64_t m = 0;
    for (int q : terms_[i].support) m |= 1ULL << q;
    masks[i] = m;
  }
  const real c0 = constant_;
  auto* out = table.data();
  parallel_for(static_cast<std::int64_t>(table.size()), [&](std::int64_t x) {
    real c = c0;
    for (std::size_t i = 0; i < masks.size(); ++i) {
      const int par = parity64(static_cast<std::uint64_t>(x) & masks[i]);
      c += par ? -terms_[i].coeff : terms_[i].coeff;
    }
    out[x] = c;
  });
  return table;
}

bool CostHamiltonian::has_linear_terms() const {
  return num_terms_of_order(1) > 0;
}

int CostHamiltonian::num_terms_of_order(int k) const {
  int c = 0;
  for (const auto& t : terms_)
    c += static_cast<int>(t.support.size()) == k;
  return c;
}

Graph CostHamiltonian::interaction_graph() const {
  Graph g(n_);
  for (const auto& t : terms_) {
    for (std::size_t i = 0; i < t.support.size(); ++i)
      for (std::size_t j = i + 1; j < t.support.size(); ++j)
        if (!g.has_edge(t.support[i], t.support[j]))
          g.add_edge(t.support[i], t.support[j]);
  }
  return g;
}

CostHamiltonian CostHamiltonian::maxcut(const Graph& g) {
  CostHamiltonian c(g.num_vertices(),
                    static_cast<real>(g.num_edges()) / 2.0);
  for (const Edge& e : g.edges()) c.add_term({e.u, e.v}, -0.5);
  return c;
}

CostHamiltonian CostHamiltonian::maxcut_weighted(
    const Graph& g, const std::vector<real>& weights) {
  MBQ_REQUIRE(static_cast<int>(weights.size()) == g.num_edges(),
              "weight count " << weights.size() << " != edge count "
                              << g.num_edges());
  real total = 0.0;
  for (real w : weights) total += w;
  CostHamiltonian c(g.num_vertices(), total / 2.0);
  const auto& edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i)
    c.add_term({edges[i].u, edges[i].v}, -weights[i] / 2.0);
  return c;
}

CostHamiltonian CostHamiltonian::qubo(
    int n, const std::vector<real>& linear,
    const std::vector<std::pair<Edge, real>>& quad, real constant) {
  MBQ_REQUIRE(static_cast<int>(linear.size()) == n,
              "linear coefficient count " << linear.size() << " != n=" << n);
  // Validate the whole quadratic list up front: a malformed entry must
  // throw before any term mutates the Hamiltonian, and duplicate pairs
  // would otherwise silently sum their coefficients.
  std::set<std::pair<int, int>> seen;
  for (const auto& [e, w] : quad) {
    (void)w;
    MBQ_REQUIRE(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n,
                "QUBO quadratic term {" << e.u << "," << e.v
                                        << "} out of range for n=" << n);
    MBQ_REQUIRE(e.u != e.v, "QUBO quadratic term {"
                                << e.u << "," << e.v
                                << "} couples a variable with itself; fold "
                                   "x_i^2 = x_i into linear[" << e.u << "]");
    const auto key = std::minmax(e.u, e.v);
    MBQ_REQUIRE(seen.insert(key).second,
                "duplicate QUBO quadratic term {" << key.first << ","
                                                  << key.second
                                                  << "}; merge coefficients "
                                                     "before constructing");
  }
  CostHamiltonian c(n, constant);
  // x_i = (1 - Z_i)/2.
  for (int i = 0; i < n; ++i) {
    if (linear[i] == 0.0) continue;
    c.constant_ += linear[i] / 2.0;
    c.add_term({i}, -linear[i] / 2.0);
  }
  for (const auto& [e, w] : quad) {
    if (w == 0.0) continue;
    // x_u x_v = (1 - Z_u - Z_v + Z_u Z_v)/4.
    c.constant_ += w / 4.0;
    c.add_term({e.u}, -w / 4.0);
    c.add_term({e.v}, -w / 4.0);
    c.add_term({e.u, e.v}, w / 4.0);
  }
  return c;
}

CostHamiltonian CostHamiltonian::pubo(int n,
                                      const std::vector<PuboTerm>& terms,
                                      real constant) {
  CostHamiltonian c(n, constant);
  // Accumulate the expansion in a support-keyed map rather than through
  // add_term's linear scan: a single order-16 monomial already expands
  // into 2^16 distinct supports, which would make repeated scans
  // quadratic.  The map is keyed by the SAME canonical (|S|, lex) order
  // add_term maintains, so the direct terms_ writes below preserve the
  // construction invariant the codec and spec compiler rely on.
  const auto canonical_less = [](const std::vector<int>& a,
                                 const std::vector<int>& b) {
    return a.size() != b.size() ? a.size() < b.size() : a < b;
  };
  std::map<std::vector<int>, real, decltype(canonical_less)> expanded(
      canonical_less);
  for (const PuboTerm& t : terms) {
    // x_i^2 = x_i: repeated indices collapse (unlike Z, where they
    // cancel), so deduplicate rather than reduce mod 2.
    std::vector<int> vars = t.vars;
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    for (int v : vars)
      MBQ_REQUIRE(v >= 0 && v < n,
                  "PUBO term variable " << v << " out of range for n=" << n);
    const int k = static_cast<int>(vars.size());
    MBQ_REQUIRE(k <= 16, "PUBO term of order " << k
                             << " exceeds the order-16 expansion cap (2^k "
                                "Ising terms per monomial)");
    if (t.coeff == 0.0) continue;
    // prod_{i in S} x_i = prod (1 - Z_i)/2
    //                   = 2^{-|S|} sum_{T subseteq S} (-1)^{|T|} Z_T.
    const real scale = t.coeff / static_cast<real>(std::uint64_t{1} << k);
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << k); ++mask) {
      std::vector<int> support;
      for (int i = 0; i < k; ++i)
        if ((mask >> i) & 1) support.push_back(vars[i]);
      const real sign = (std::popcount(mask) % 2 == 0) ? 1.0 : -1.0;
      expanded[std::move(support)] += sign * scale;
    }
  }
  for (auto& [support, coeff] : expanded) {
    if (support.empty()) {
      c.constant_ += coeff;
    } else if (coeff != 0.0) {  // drop exact cancellations: they would
      // inflate max_order() and compile to dead gadgets
      c.max_order_ =
          std::max(c.max_order_, static_cast<int>(support.size()));
      c.terms_.push_back({coeff, support});
    }
  }
  return c;
}

CostHamiltonian CostHamiltonian::independent_set_size(int n) {
  CostHamiltonian c(n, static_cast<real>(n) / 2.0);
  for (int i = 0; i < n; ++i) c.add_term({i}, -0.5);
  return c;
}

CostHamiltonian CostHamiltonian::weighted_independent_set(
    const std::vector<real>& weights) {
  const int n = static_cast<int>(weights.size());
  // x_i = (1 - Z_i)/2, so sum w_i x_i = sum(w)/2 - sum (w_i/2) Z_i.
  real total = 0.0;
  for (real w : weights) total += w;
  CostHamiltonian c(n, total / 2.0);
  for (int i = 0; i < n; ++i)
    if (weights[i] != 0.0) c.add_term({i}, -weights[i] / 2.0);
  return c;
}

CostHamiltonian CostHamiltonian::mis_penalized(const Graph& g, real penalty) {
  std::vector<real> linear(static_cast<std::size_t>(g.num_vertices()), 1.0);
  std::vector<std::pair<Edge, real>> quad;
  for (const Edge& e : g.edges()) quad.push_back({e, -penalty});
  return qubo(g.num_vertices(), linear, quad);
}

}  // namespace mbq::qaoa
