#include "mbq/qaoa/qaoa.h"

#include "mbq/common/error.h"

namespace mbq::qaoa {

Angles::Angles(std::vector<real> g, std::vector<real> b)
    : gamma(std::move(g)), beta(std::move(b)) {
  MBQ_REQUIRE(gamma.size() == beta.size(),
              "gamma/beta length mismatch: " << gamma.size() << " vs "
                                             << beta.size());
  MBQ_REQUIRE(!gamma.empty(), "QAOA needs at least one layer");
}

Angles Angles::random(int p, Rng& rng) {
  std::vector<real> g(p), b(p);
  for (int i = 0; i < p; ++i) {
    g[i] = rng.angle();
    b[i] = rng.uniform(-kPi / 2, kPi / 2);
  }
  return Angles(std::move(g), std::move(b));
}

Angles Angles::linear_ramp(int p, real dt) {
  std::vector<real> g(p), b(p);
  for (int i = 0; i < p; ++i) {
    const real f = (i + 1.0) / (p + 1.0);
    g[i] = dt * f;
    b[i] = dt * (1.0 - f);
  }
  return Angles(std::move(g), std::move(b));
}

std::vector<real> Angles::flat() const {
  std::vector<real> v = gamma;
  v.insert(v.end(), beta.begin(), beta.end());
  return v;
}

Angles Angles::from_flat(const std::vector<real>& v) {
  MBQ_REQUIRE(v.size() % 2 == 0 && !v.empty(),
              "flat angle vector must have even positive length");
  const std::size_t p = v.size() / 2;
  return Angles(std::vector<real>(v.begin(), v.begin() + p),
                std::vector<real>(v.begin() + p, v.end()));
}

Circuit qaoa_circuit(const CostHamiltonian& c, const Angles& a) {
  Circuit circ(c.num_qubits());
  for (int q = 0; q < c.num_qubits(); ++q) circ.h(q);
  for (int k = 0; k < a.p(); ++k) {
    // exp(-i gamma C): each term w_S Z_S contributes the phase gadget
    // exp(-i gamma w_S Z_S) = PhaseGadget(2 gamma w_S, S); the constant
    // c0 is a global phase and is dropped.
    for (const auto& t : c.terms())
      circ.phase_gadget(t.support, 2.0 * a.gamma[k] * t.coeff);
    // exp(-i beta B): rx(2 beta) per qubit up to global phase.
    for (int q = 0; q < c.num_qubits(); ++q) circ.rx(q, 2.0 * a.beta[k]);
  }
  return circ;
}

Statevector qaoa_state(const CostHamiltonian& c, const Angles& a,
                       const std::vector<real>* cost_table) {
  std::vector<real> local;
  if (cost_table == nullptr) {
    local = c.cost_table();
    cost_table = &local;
  }
  Statevector sv = Statevector::all_plus(c.num_qubits());
  for (int k = 0; k < a.p(); ++k) {
    sv.apply_phase_of_cost(a.gamma[k], *cost_table);
    sv.apply_mixer_layer(a.beta[k]);
  }
  return sv;
}

real qaoa_expectation(const CostHamiltonian& c, const Angles& a,
                      const std::vector<real>* cost_table) {
  std::vector<real> local;
  if (cost_table == nullptr) {
    local = c.cost_table();
    cost_table = &local;
  }
  return qaoa_state(c, a, cost_table).expectation_diagonal(*cost_table);
}

std::vector<std::uint64_t> qaoa_sample(const CostHamiltonian& c,
                                       const Angles& a, int shots, Rng& rng) {
  const Statevector sv = qaoa_state(c, a);
  std::vector<std::uint64_t> out(static_cast<std::size_t>(shots));
  for (auto& x : out) x = sv.sample(rng);
  return out;
}

}  // namespace mbq::qaoa
