#pragma once
// Declarative angle-parameterized circuits.
//
// A ParamCircuit is the value-semantic alternative to the api layer's
// CircuitBuilder closures: a plain list of gates whose angles are affine
// functions of the QAOA angle vector —
//
//   angle = offset + scale * source,   source in { 1 (constant),
//                                                  gamma[k], beta[k] }
//
// — so the whole ansatz is data.  Data serializes, compares, and crosses
// process boundaries, which is what lets XY-mixer and HEA workloads
// shard across worker processes instead of falling back in-process (a
// std::function can do none of those).  instantiate() binds an Angles
// value and returns the concrete Circuit; the gate set is exactly
// circuit/circuit.h's, so everything a CircuitBuilder could build from
// gates, a ParamCircuit can declare.
//
// Ansätze whose parameter count exceeds 2p still fit: Angles is just two
// real vectors, so e.g. the HEA (hea.h) lays its per-(layer, qubit) Rz
// angles out in gamma and its Rx angles in beta (see
// hea_param_circuit).

#include <cstdint>
#include <vector>

#include "mbq/circuit/circuit.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::qaoa {

/// Affine angle expression: offset + scale * source.
struct Param {
  enum class Source : std::uint8_t { Constant, Gamma, Beta };

  Source source = Source::Constant;
  int index = 0;  // layer k for Gamma/Beta; ignored for Constant
  real scale = 0.0;
  real offset = 0.0;

  static Param constant(real value) {
    return {Source::Constant, 0, 0.0, value};
  }
  static Param gamma(int layer, real scale = 1.0, real offset = 0.0) {
    return {Source::Gamma, layer, scale, offset};
  }
  static Param beta(int layer, real scale = 1.0, real offset = 0.0) {
    return {Source::Beta, layer, scale, offset};
  }
  /// The expression scaled by f (both scale and offset — this is f * expr).
  Param scaled(real f) const { return {source, index, scale * f, offset * f}; }

  real evaluate(const Angles& a) const;

  friend bool operator==(const Param&, const Param&) = default;
};

/// One declarative gate: a circuit/circuit.h Gate with its angle
/// replaced by a Param expression.
struct ParamGate {
  GateKind kind = GateKind::H;
  std::vector<int> qubits;
  Param angle = Param::constant(0.0);
  int ctrl_value = 0;  // only for ControlledExpX

  friend bool operator==(const ParamGate&, const ParamGate&) = default;
};

class ParamCircuit {
 public:
  ParamCircuit() = default;
  explicit ParamCircuit(int num_qubits);

  int num_qubits() const noexcept { return n_; }
  const std::vector<ParamGate>& gates() const noexcept { return gates_; }
  std::size_t size() const noexcept { return gates_.size(); }
  /// Smallest gamma/beta vector lengths an Angles value must provide.
  int min_gamma() const noexcept { return min_gamma_; }
  int min_beta() const noexcept { return min_beta_; }

  // --- builders (mirroring Circuit's, chainable) -----------------------
  ParamCircuit& h(int q);
  ParamCircuit& x(int q);
  ParamCircuit& y(int q);
  ParamCircuit& z(int q);
  ParamCircuit& s(int q);
  ParamCircuit& sdg(int q);
  ParamCircuit& t(int q);
  ParamCircuit& tdg(int q);
  ParamCircuit& rx(int q, Param theta);
  ParamCircuit& rz(int q, Param theta);
  ParamCircuit& cz(int a, int b);
  ParamCircuit& cx(int control, int target);
  /// exp(-i theta/2 Z_S).
  ParamCircuit& phase_gadget(std::vector<int> support, Param theta);
  /// exp(i beta X_target) controlled on all `controls` == ctrl_value.
  ParamCircuit& controlled_exp_x(int target, std::vector<int> controls,
                                 Param beta, int ctrl_value);
  /// e^{i beta (X_u X_v + Y_u Y_v)} — the XY mixer pair of mixers.h, with
  /// beta an expression (typically Param::beta(layer)).
  ParamCircuit& xy_pair(int u, int v, Param beta);
  /// Ring-XY mixer layer over `ring` (see mixers.h xy_mixer_ring).
  ParamCircuit& xy_ring(const std::vector<int>& ring, Param beta);
  /// Validated generic append — the single entry point every builder
  /// (and the wire-format decoder) funnels through.  Throws Error on
  /// out-of-range/duplicate qubits, bad arity, or a negative layer index.
  ParamCircuit& append(ParamGate g);
  ParamCircuit& append(const ParamCircuit& other);

  /// Bind the angles and return the concrete circuit.  Throws Error when
  /// a gate references gamma[k]/beta[k] beyond the given vectors.
  Circuit instantiate(const Angles& a) const;

  friend bool operator==(const ParamCircuit&, const ParamCircuit&) = default;

 private:
  int n_ = 0;
  int min_gamma_ = 0;
  int min_beta_ = 0;
  std::vector<ParamGate> gates_;
};

}  // namespace mbq::qaoa
