#include "mbq/qaoa/mixers.h"

#include "mbq/common/bits.h"
#include "mbq/common/error.h"

namespace mbq::qaoa {

Circuit mis_partial_mixer(const Graph& g, int v, real beta) {
  Circuit c(g.num_vertices());
  c.controlled_exp_x(v, g.neighbors(v), beta, /*ctrl_value=*/0);
  return c;
}

Circuit mis_mixer(const Graph& g, real beta) {
  Circuit c(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v)
    c.controlled_exp_x(v, g.neighbors(v), beta, 0);
  return c;
}

Circuit mis_qaoa_circuit(const Graph& g, const Angles& a) {
  const int n = g.num_vertices();
  Circuit c(n);
  // Feasible initial state: the empty independent set |0...0> is the
  // circuit's natural start; an initial mixer application spreads it over
  // feasible states (paper, Sec. IV).
  c.append(mis_mixer(g, a.beta.front()));
  for (int k = 0; k < a.p(); ++k) {
    // Phase layer for c(x) = sum x_i = n/2 - (1/2) sum Z_i:
    // exp(-i gamma C) ~ prod exp(+i gamma Z_i / 2) = prod PG(-gamma, {i}).
    for (int q = 0; q < n; ++q) c.phase_gadget({q}, -a.gamma[k]);
    c.append(mis_mixer(g, a.beta[k]));
  }
  return c;
}

bool is_independent_set(const Graph& g, std::uint64_t x) {
  for (const Edge& e : g.edges())
    if (get_bit(x, e.u) && get_bit(x, e.v)) return false;
  return true;
}

real infeasible_mass(const Graph& g, const Statevector& sv) {
  MBQ_REQUIRE(sv.num_qubits() == g.num_vertices(), "width mismatch");
  real mass = 0.0;
  const auto& amps = sv.amplitudes();
  for (std::uint64_t x = 0; x < amps.size(); ++x)
    if (!is_independent_set(g, x)) mass += std::norm(amps[x]);
  return mass;
}

Circuit xy_mixer_pair(int n, int u, int v, real beta) {
  MBQ_REQUIRE(u != v, "XY mixer needs distinct qubits");
  Circuit c(n);
  // e^{i beta X_u X_v}: conjugate exp(-i theta/2 ZZ), theta = -2 beta,
  // by H on both qubits.
  c.h(u).h(v);
  c.phase_gadget({u, v}, -2.0 * beta);
  c.h(u).h(v);
  // e^{i beta Y_u Y_v}: with W = S*H we have W Z W^dag = Y, so conjugate
  // the ZZ gadget by W (circuit: W^dag = sdg,h before; W = h,s after).
  c.sdg(u).h(u).sdg(v).h(v);
  c.phase_gadget({u, v}, -2.0 * beta);
  c.h(u).s(u).h(v).s(v);
  return c;
}

Circuit xy_mixer_ring(int n, const std::vector<int>& ring, real beta) {
  MBQ_REQUIRE(ring.size() >= 2, "ring needs >= 2 vertices");
  Circuit c(n);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const int u = ring[i];
    const int v = ring[(i + 1) % ring.size()];
    if (ring.size() == 2 && i == 1) break;  // avoid the duplicate pair
    c.append(xy_mixer_pair(n, u, v, beta));
  }
  return c;
}

}  // namespace mbq::qaoa
