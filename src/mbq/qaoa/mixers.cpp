#include "mbq/qaoa/mixers.h"

#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/qaoa/param_circuit.h"

namespace mbq::qaoa {

Circuit mis_partial_mixer(const Graph& g, int v, real beta) {
  Circuit c(g.num_vertices());
  c.controlled_exp_x(v, g.neighbors(v), beta, /*ctrl_value=*/0);
  return c;
}

Circuit mis_mixer(const Graph& g, real beta) {
  Circuit c(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v)
    c.controlled_exp_x(v, g.neighbors(v), beta, 0);
  return c;
}

Circuit mis_qaoa_circuit(const Graph& g, const Angles& a) {
  return mis_qaoa_circuit_weighted(
      g, std::vector<real>(static_cast<std::size_t>(g.num_vertices()), 1.0),
      a);
}

Circuit mis_qaoa_circuit_weighted(const Graph& g,
                                  const std::vector<real>& weights,
                                  const Angles& a) {
  const int n = g.num_vertices();
  MBQ_REQUIRE(static_cast<int>(weights.size()) == n,
              "MIS weight count " << weights.size() << " != vertex count "
                                  << n);
  Circuit c(n);
  // Feasible initial state: the empty independent set |0...0> is the
  // circuit's natural start; an initial mixer application spreads it over
  // feasible states (paper, Sec. IV).
  c.append(mis_mixer(g, a.beta.front()));
  for (int k = 0; k < a.p(); ++k) {
    // Phase layer for c(x) = sum w_i x_i = sum(w)/2 - (1/2) sum w_i Z_i:
    // exp(-i gamma C) ~ prod exp(+i gamma w_i Z_i / 2)
    //                 = prod PG(-w_i gamma, {i}).
    for (int q = 0; q < n; ++q) c.phase_gadget({q}, -weights[q] * a.gamma[k]);
    c.append(mis_mixer(g, a.beta[k]));
  }
  return c;
}

bool is_independent_set(const Graph& g, std::uint64_t x) {
  for (const Edge& e : g.edges())
    if (get_bit(x, e.u) && get_bit(x, e.v)) return false;
  return true;
}

real infeasible_mass(const Graph& g, const Statevector& sv) {
  MBQ_REQUIRE(sv.num_qubits() == g.num_vertices(), "width mismatch");
  real mass = 0.0;
  const auto& amps = sv.amplitudes();
  for (std::uint64_t x = 0; x < amps.size(); ++x)
    if (!is_independent_set(g, x)) mass += std::norm(amps[x]);
  return mass;
}

Circuit xy_mixer_pair(int n, int u, int v, real beta) {
  // One source of truth: the declarative xy_pair (param_circuit.cpp)
  // carries the gate sequence; binding a constant beta reproduces it
  // exactly (Param::constant evaluates to its offset, no arithmetic).
  ParamCircuit pc(n);
  pc.xy_pair(u, v, Param::constant(beta));
  return pc.instantiate({});
}

Circuit xy_mixer_ring(int n, const std::vector<int>& ring, real beta) {
  // Delegates to the declarative builder (like xy_mixer_pair): one
  // source of truth for the ring iteration and its size-2 dedup.
  ParamCircuit pc(n);
  pc.xy_ring(ring, Param::constant(beta));
  return pc.instantiate({});
}

}  // namespace mbq::qaoa
