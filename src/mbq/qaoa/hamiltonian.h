#pragma once
// Classical cost Hamiltonians in Ising form.
//
// A CostHamiltonian represents a real function c(x) over bit strings as
//   C = c0 + sum_S w_S Z_S,   Z_S = prod_{i in S} Z_i,
// diagonal in the computational basis with C|x> = c(x)|x> (Sec. II-C of
// the paper).  QUBO problems give |S| <= 2; the representation allows
// higher-order terms because the paper's construction "extends to
// higher-order cost functions" with the same per-term gadget.
//
// Convention: QAOA MAXIMIZES c(x); the phase operator is exp(-i gamma C).

#include <cstdint>
#include <vector>

#include "mbq/common/types.h"
#include "mbq/graph/graph.h"

namespace mbq::qaoa {

struct IsingTerm {
  real coeff = 0.0;
  std::vector<int> support;  // sorted, distinct qubits
};

/// One monomial coeff * prod_{i in vars} x_i of a PUBO over 0/1
/// variables.  Repeated indices collapse (x_i^2 = x_i).
struct PuboTerm {
  real coeff = 0.0;
  std::vector<int> vars;
};

class CostHamiltonian {
 public:
  explicit CostHamiltonian(int num_qubits, real constant = 0.0);

  int num_qubits() const noexcept { return n_; }
  real constant() const noexcept { return constant_; }
  /// Terms in canonical order: ascending (|S|, S lexicographic).  The
  /// order is a construction invariant (add_term inserts sorted), so two
  /// hamiltonians describing the same function compare, encode, and
  /// float-sum identically regardless of the order their frontends added
  /// terms in.
  const std::vector<IsingTerm>& terms() const noexcept { return terms_; }

  /// Add w * Z_S; support is sorted and deduplicated (repeats cancel
  /// pairwise since Z^2 = I).  Terms with identical support are merged
  /// (binary search into the canonical order above).
  void add_term(std::vector<int> support, real coeff);

  /// c(x) for a bit assignment.
  real evaluate(std::uint64_t x) const;
  /// Full table of c(x), x in [0, 2^n); n <= 28 guard.
  std::vector<real> cost_table() const;

  /// Max |S| over terms (0 if none).  O(1): maintained at insertion,
  /// since capability checks consult it per angle point.
  int max_order() const noexcept { return max_order_; }
  bool has_linear_terms() const;
  int num_terms_of_order(int k) const;

  /// Graph with an edge {u,v} whenever some term couples u and v.
  Graph interaction_graph() const;

  // --- frontends ---
  /// MaxCut: C = |E|/2 - (1/2) sum_{(u,v) in E} Z_u Z_v (cut size).
  static CostHamiltonian maxcut(const Graph& g);
  /// Weighted MaxCut: C = sum_e w_e (1 - Z_u Z_v)/2; weights are indexed
  /// like g.edges().
  static CostHamiltonian maxcut_weighted(const Graph& g,
                                         const std::vector<real>& weights);
  /// General QUBO: c(x) = sum_i linear[i] x_i + sum_{i<j} quad[{i,j}] x_i x_j
  /// + constant (maximized).  Throws Error on out-of-range endpoints,
  /// self-edges, or duplicate {i,j} entries (which would silently sum).
  static CostHamiltonian qubo(int n, const std::vector<real>& linear,
                              const std::vector<std::pair<Edge, real>>& quad,
                              real constant = 0.0);
  /// General PUBO over 0/1 variables: c(x) = constant +
  /// sum_t coeff_t * prod_{i in vars_t} x_i (maximized).  Each order-k
  /// monomial expands into 2^k Ising terms via x_i = (1 - Z_i)/2 — the
  /// higher-order extension of Sec. II-C, compiled with the same
  /// per-term gadget.  Repeated indices within a term collapse
  /// (x_i^2 = x_i); out-of-range indices throw; term order is capped at
  /// 16 (the expansion is exponential in the order).
  static CostHamiltonian pubo(int n, const std::vector<PuboTerm>& terms,
                              real constant = 0.0);
  /// Independent-set size: c(x) = sum_i x_i (for the constraint-preserving
  /// MIS ansatz of Sec. IV, no penalty terms needed).
  static CostHamiltonian independent_set_size(int n);
  /// Weighted independent-set value c(x) = sum_i weights[i] x_i, for the
  /// weighted variant of the constraint-preserving MIS ansatz.
  static CostHamiltonian weighted_independent_set(
      const std::vector<real>& weights);
  /// Penalized MIS QUBO: sum_i x_i - penalty * sum_{(u,v) in E} x_u x_v.
  static CostHamiltonian mis_penalized(const Graph& g, real penalty);

 private:
  int n_ = 0;
  real constant_ = 0.0;
  int max_order_ = 0;
  std::vector<IsingTerm> terms_;
};

}  // namespace mbq::qaoa
