#pragma once
// Hardware-efficient ansatz (HEA) — the Sec. V remark: "one might also
// consider wider varieties of parameterized quantum circuits beyond
// QAOA, such as so-called hardware-efficient ansaetze ... one may
// proceed similarly in translating to MBQC".
//
// The layout is the standard brickwork: per layer, Rz and Rx rotations
// on every qubit followed by a CZ ladder over a coupling graph.  The
// resulting circuit feeds directly into core::compile_circuit_tailored,
// giving the MBQC translation the paper anticipates.

#include <array>

#include "mbq/circuit/circuit.h"
#include "mbq/common/rng.h"
#include "mbq/graph/graph.h"
#include "mbq/qaoa/param_circuit.h"

namespace mbq::qaoa {

struct HeaParameters {
  /// theta[layer][qubit][0] = Rz angle, [1] = Rx angle.
  std::vector<std::vector<std::array<real, 2>>> theta;
  int layers() const { return static_cast<int>(theta.size()); }

  static HeaParameters random(int layers, int n, Rng& rng);
  std::vector<real> flat() const;
  static HeaParameters from_flat(const std::vector<real>& v, int layers,
                                 int n);
};

/// Build the HEA circuit over the coupling graph (CZ per edge per layer).
Circuit hea_circuit(const Graph& coupling, const HeaParameters& params);

/// The same brickwork as a declarative ParamCircuit: the Rz angle of
/// (layer L, qubit q) reads gamma[L*n + q], the Rx angle beta[L*n + q]
/// (Angles is just two real vectors, so ansätze with more than 2p
/// parameters pack them this way — see hea_angles).  Serializable, so
/// HEA workloads shard across worker processes.
ParamCircuit hea_param_circuit(const Graph& coupling, int layers);

/// Pack HeaParameters into the Angles layout hea_param_circuit reads.
/// Pass the coupling graph's vertex count as num_qubits when composing
/// with hea_param_circuit by hand: a width mismatch would otherwise
/// shift every layer*n + q slot silently (0 skips the check).
Angles hea_angles(const HeaParameters& params, int num_qubits = 0);

/// Number of parameters for (layers, n).
int hea_parameter_count(int layers, int n);

}  // namespace mbq::qaoa
