#pragma once
// Hardware-efficient ansatz (HEA) — the Sec. V remark: "one might also
// consider wider varieties of parameterized quantum circuits beyond
// QAOA, such as so-called hardware-efficient ansaetze ... one may
// proceed similarly in translating to MBQC".
//
// The layout is the standard brickwork: per layer, Rz and Rx rotations
// on every qubit followed by a CZ ladder over a coupling graph.  The
// resulting circuit feeds directly into core::compile_circuit_tailored,
// giving the MBQC translation the paper anticipates.

#include <array>

#include "mbq/circuit/circuit.h"
#include "mbq/common/rng.h"
#include "mbq/graph/graph.h"

namespace mbq::qaoa {

struct HeaParameters {
  /// theta[layer][qubit][0] = Rz angle, [1] = Rx angle.
  std::vector<std::vector<std::array<real, 2>>> theta;
  int layers() const { return static_cast<int>(theta.size()); }

  static HeaParameters random(int layers, int n, Rng& rng);
  std::vector<real> flat() const;
  static HeaParameters from_flat(const std::vector<real>& v, int layers,
                                 int n);
};

/// Build the HEA circuit over the coupling graph (CZ per edge per layer).
Circuit hea_circuit(const Graph& coupling, const HeaParameters& params);

/// Number of parameters for (layers, n).
int hea_parameter_count(int layers, int n);

}  // namespace mbq::qaoa
