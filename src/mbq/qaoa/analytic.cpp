#include "mbq/qaoa/analytic.h"

#include <cmath>

#include "mbq/common/error.h"

namespace mbq::qaoa {

real maxcut_p1_edge_expectation(const Graph& g, const Edge& e, real gamma,
                                real beta) {
  MBQ_REQUIRE(g.has_edge(e.u, e.v), "no such edge {" << e.u << "," << e.v
                                                     << "}");
  const int du = g.degree(e.u);
  const int dv = g.degree(e.v);
  const int lambda = g.common_neighbor_count(e.u, e.v);
  const real c = std::cos(gamma);
  // Theorem 1 of Wang et al. 2018:
  // <C_uv> = 1/2
  //   + (1/4) sin(4 beta) sin(gamma) (cos^{d_u-1} gamma + cos^{d_v-1} gamma)
  //   - (1/4) sin^2(2 beta) cos^{d_u + d_v - 2 - 2 lambda}(gamma)
  //         * (1 - cos^lambda(2 gamma)).
  const real term1 = 0.25 * std::sin(4 * beta) * std::sin(gamma) *
                     (std::pow(c, du - 1) + std::pow(c, dv - 1));
  const real term2 = 0.25 * std::pow(std::sin(2 * beta), 2) *
                     std::pow(c, du + dv - 2 - 2 * lambda) *
                     (1.0 - std::pow(std::cos(2 * gamma), lambda));
  return 0.5 + term1 - term2;
}

real maxcut_p1_expectation(const Graph& g, real gamma, real beta) {
  real total = 0.0;
  for (const Edge& e : g.edges())
    total += maxcut_p1_edge_expectation(g, e, gamma, beta);
  return total;
}

P1Optimum maxcut_p1_grid_optimum(const Graph& g, int grid) {
  MBQ_REQUIRE(grid >= 2, "grid too small: " << grid);
  P1Optimum best;
  best.value = -1e300;
  for (int i = 0; i < grid; ++i) {
    const real gamma = -kPi + kTwoPi * (i + 0.5) / grid;
    for (int j = 0; j < grid; ++j) {
      const real beta = -kPi / 2 + kPi * (j + 0.5) / grid;
      const real v = maxcut_p1_expectation(g, gamma, beta);
      if (v > best.value) best = {gamma, beta, v};
    }
  }
  return best;
}

}  // namespace mbq::qaoa
