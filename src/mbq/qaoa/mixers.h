#pragma once
// Alternative mixing operators: the quantum alternating operator ansatz
// (ref [5]) pieces used in Secs. IV and V of the paper.
//
//  * MIS partial mixers U_v(beta) = Lambda_{N(v)}(e^{i beta X_v}): the
//    X-rotation fires only when every neighbour is 0, so the mixer maps
//    independent sets to independent sets.
//  * XY mixers e^{i beta (X_u X_v + Y_u Y_v)}: preserve Hamming weight,
//    used for one-hot / coloring encodings.

#include "mbq/circuit/circuit.h"
#include "mbq/graph/graph.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::qaoa {

/// One MIS partial mixer as a (single-gate) circuit.
Circuit mis_partial_mixer(const Graph& g, int v, real beta);

/// Full MIS mixer: ordered product of partial mixers v = 0..n-1.
Circuit mis_mixer(const Graph& g, real beta);

/// Complete MIS QAOA circuit (Sec. IV): start from a feasible state
/// (empty set |0...0>), then p alternating phase (single-qubit rotations
/// for c(x) = |set|) and partial-mixer layers.  An initial mixer layer is
/// prepended, following the paper's suggestion to apply the mixer to a
/// classically-found feasible state.
Circuit mis_qaoa_circuit(const Graph& g, const Angles& a);

/// Weighted variant: the phase layer rotates vertex v by w_v * gamma
/// (cost c(x) = sum_v weights[v] x_v); the constraint-preserving mixer
/// is unchanged.  weights must have one entry per vertex; the
/// all-ones vector reproduces mis_qaoa_circuit exactly.
Circuit mis_qaoa_circuit_weighted(const Graph& g,
                                  const std::vector<real>& weights,
                                  const Angles& a);

/// True if bitstring x is an independent set of g.
bool is_independent_set(const Graph& g, std::uint64_t x);

/// Total probability mass outside the independent-set subspace.
real infeasible_mass(const Graph& g, const Statevector& sv);

/// e^{i beta (X_u X_v + Y_u Y_v)} as a circuit (two conjugated phase
/// gadgets; the factors commute).
Circuit xy_mixer_pair(int n, int u, int v, real beta);

/// Ring-XY mixer layer over the given vertex ring.
Circuit xy_mixer_ring(int n, const std::vector<int>& ring, real beta);

}  // namespace mbq::qaoa
