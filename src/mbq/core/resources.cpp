#include "mbq/core/resources.h"

namespace mbq::core {

ResourceEstimate estimate_resources(const qaoa::CostHamiltonian& cost,
                                    int p) {
  ResourceEstimate r;
  const int n = cost.num_qubits();
  int per_layer_ancillas = 2 * n;   // mixer: two per vertex (Eq. (9))
  int per_layer_entanglers = 2 * n; // mixer: two CZ per vertex
  for (const auto& t : cost.terms()) {
    per_layer_ancillas += 1;  // one gadget ancilla per term
    per_layer_entanglers += static_cast<int>(t.support.size());
  }
  r.paper_ancilla_bound = p * per_layer_ancillas;
  r.paper_entangler_bound = p * per_layer_entanglers;
  r.gate_model_qubits = n;
  // Standard compilation: each 2-local term costs 2 CX; k-local costs
  // 2(k-1); linear terms cost none.
  int per_layer_gate = 0;
  for (const auto& t : cost.terms())
    if (t.support.size() >= 2)
      per_layer_gate += 2 * (static_cast<int>(t.support.size()) - 1);
  r.gate_model_entanglers = p * per_layer_gate;
  return r;
}

ResourceEstimate measure_resources(const qaoa::CostHamiltonian& cost, int p,
                                   const CompiledPattern& compiled) {
  ResourceEstimate r = estimate_resources(cost, p);
  const auto& pat = compiled.pattern;
  r.total_wires = pat.num_wires();
  r.ancillas = pat.num_prepared() - cost.num_qubits();
  r.entanglers = pat.num_entangling();
  r.measurements = pat.num_measurements();
  return r;
}

}  // namespace mbq::core
