#pragma once
// End-to-end MBQC-QAOA protocol: compile once, execute the adaptive
// pattern per shot, read out the problem register.
//
// Because the compiled patterns are deterministic, a single run with
// quantum corrections reproduces the exact QAOA state regardless of which
// measurement branch was realized, so expectation values need one run
// only.  Shot-based sampling re-executes the full adaptive protocol per
// shot, exactly as hardware would.  The classical-correction mode skips
// the terminal X/Z commands and instead flips the sampled bits with the
// X byproduct parities (Z byproducts do not affect computational-basis
// statistics) — the ablation of bench_ablations.

#include <cstdint>

#include "mbq/core/compiler.h"
#include "mbq/qaoa/hamiltonian.h"

namespace mbq::core {

enum class CorrectionMode : std::uint8_t { Quantum, ClassicalPostProcess };

struct ShotRecord {
  std::uint64_t x = 0;
  real cost = 0.0;
};

class MbqcQaoaSolver {
 public:
  explicit MbqcQaoaSolver(qaoa::CostHamiltonian cost,
                          CorrectionMode mode = CorrectionMode::Quantum,
                          LinearTermStyle linear_style =
                              LinearTermStyle::Gadget);

  const qaoa::CostHamiltonian& cost() const noexcept { return cost_; }

  /// Exact <C> through the MBQC protocol (one adaptive pattern run).
  real expectation(const qaoa::Angles& angles, Rng& rng) const;

  /// Full protocol samples: per shot, run the adaptive pattern and
  /// measure the output register (corrections per the configured mode).
  std::vector<ShotRecord> sample(const qaoa::Angles& angles, int shots,
                                 Rng& rng) const;

  /// Best bitstring over a batch of shots.
  ShotRecord best_of(const qaoa::Angles& angles, int shots, Rng& rng) const;

  /// Compile for the given angles (exposed for inspection/benches).
  CompiledPattern compile(const qaoa::Angles& angles) const;

 private:
  qaoa::CostHamiltonian cost_;
  CorrectionMode mode_;
  CompileOptions options_;
};

}  // namespace mbq::core
