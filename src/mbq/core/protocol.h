#pragma once
// End-to-end MBQC-QAOA protocol façade.
//
// MbqcQaoaSolver predates the unified backend API and is kept as a thin
// compatibility layer: it now delegates to the measurement-based adapter
// of mbq/api (api::MbqcBackend), which owns the protocol semantics —
// compile once, one adaptive run for expectations (determinism makes the
// output state branch-free), full re-execution per shot for sampling,
// and the classical-correction ablation that fixes X byproducts in
// post-processing.  New code should use api::Session directly.

#include <cstdint>
#include <memory>
#include <vector>

#include "mbq/core/compiler.h"
#include "mbq/qaoa/hamiltonian.h"

namespace mbq::api {
class MbqcBackend;
class Workload;
}  // namespace mbq::api

namespace mbq::core {

struct ShotRecord {
  std::uint64_t x = 0;
  real cost = 0.0;
};

class MbqcQaoaSolver {
 public:
  explicit MbqcQaoaSolver(qaoa::CostHamiltonian cost,
                          CorrectionMode mode = CorrectionMode::Quantum,
                          LinearTermStyle linear_style =
                              LinearTermStyle::Gadget);
  ~MbqcQaoaSolver();
  MbqcQaoaSolver(const MbqcQaoaSolver&);
  MbqcQaoaSolver& operator=(const MbqcQaoaSolver&);

  const qaoa::CostHamiltonian& cost() const noexcept;

  /// Exact <C> through the MBQC protocol (one adaptive pattern run).
  real expectation(const qaoa::Angles& angles, Rng& rng) const;

  /// Full protocol samples: per shot, run the adaptive pattern and
  /// measure the output register (corrections per the configured mode).
  std::vector<ShotRecord> sample(const qaoa::Angles& angles, int shots,
                                 Rng& rng) const;

  /// Best bitstring over a batch of shots.
  ShotRecord best_of(const qaoa::Angles& angles, int shots, Rng& rng) const;

  /// Compile for the given angles (exposed for inspection/benches).
  CompiledPattern compile(const qaoa::Angles& angles) const;

 private:
  // Workload + backend from the unified API (pimpl'd to keep this header
  // free of api includes for the many call sites that only need core).
  std::unique_ptr<api::Workload> workload_;
  std::unique_ptr<api::MbqcBackend> backend_;
  CorrectionMode mode_;
};

}  // namespace mbq::core
