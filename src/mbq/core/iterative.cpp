#include "mbq/core/iterative.h"

#include <algorithm>
#include <map>

#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/core/protocol.h"
#include "mbq/mbqc/runner.h"
#include "mbq/opt/exact.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::core {

namespace {

using WeightMap = std::map<std::pair<int, int>, real>;

std::pair<int, int> key(int a, int b) {
  return {std::min(a, b), std::max(a, b)};
}

/// Weighted MaxCut Hamiltonian from a weight map over k vertices.
qaoa::CostHamiltonian hamiltonian_of(int k, const WeightMap& w) {
  real total = 0.0;
  for (const auto& [e, wt] : w) total += wt;
  qaoa::CostHamiltonian c(k, total / 2.0);
  for (const auto& [e, wt] : w) c.add_term({e.first, e.second}, -wt / 2.0);
  return c;
}

/// Edge correlations <Z_u Z_v> from a single (deterministic) MBQC run of
/// p=1 QAOA at grid-optimized angles.
WeightMap mbqc_correlations(int k, const WeightMap& w,
                            const IterativeOptions& opt, Rng& rng) {
  const qaoa::CostHamiltonian cost = hamiltonian_of(k, w);
  const auto table = cost.cost_table();
  // Grid-search p=1 angles on the fast gate-model objective (the
  // classical outer loop); the correlations themselves come from the
  // measurement-based run below.
  real best_val = -1e300;
  qaoa::Angles best({0.1}, {0.1});
  for (int i = 0; i < opt.angle_grid; ++i) {
    const real gamma = -kPi + kTwoPi * (i + 0.5) / opt.angle_grid;
    for (int j = 0; j < opt.angle_grid; ++j) {
      const real beta = -kPi / 2 + kPi * (j + 0.5) / opt.angle_grid;
      const qaoa::Angles a({gamma}, {beta});
      const real v = qaoa::qaoa_expectation(cost, a, &table);
      if (v > best_val) {
        best_val = v;
        best = a;
      }
    }
  }
  // One adaptive MBQC run; determinism makes the state exact.
  const MbqcQaoaSolver solver(cost);
  const CompiledPattern cp = solver.compile(best);
  const mbqc::RunResult r = mbqc::run(cp.pattern, rng);
  WeightMap corr;
  for (const auto& [e, wt] : w) {
    real m = 0.0;
    for (std::uint64_t x = 0; x < r.output_state.size(); ++x) {
      const int zu = get_bit(x, e.first) ? -1 : 1;
      const int zv = get_bit(x, e.second) ? -1 : 1;
      m += std::norm(r.output_state[x]) * zu * zv;
    }
    corr[e] = m;
  }
  return corr;
}

}  // namespace

IterativeResult iterative_maxcut(const Graph& g,
                                 const std::vector<real>& weights,
                                 const IterativeOptions& options, Rng& rng) {
  MBQ_REQUIRE(static_cast<int>(weights.size()) == g.num_edges(),
              "weight count mismatch");
  MBQ_REQUIRE(options.base_case_size >= 1, "base case must be >= 1");
  const int n = g.num_vertices();

  // Clusters: per super-vertex, the original vertices with relative signs.
  std::vector<std::vector<std::pair<int, int>>> clusters(n);
  for (int v = 0; v < n; ++v) clusters[v] = {{v, +1}};
  WeightMap w;
  {
    const auto& es = g.edges();
    for (std::size_t i = 0; i < es.size(); ++i) {
      if (weights[i] != 0.0) w[key(es[i].u, es[i].v)] += weights[i];
    }
  }

  IterativeResult result;
  int round = 0;
  while (static_cast<int>(clusters.size()) > options.base_case_size &&
         !w.empty()) {
    const int k = static_cast<int>(clusters.size());
    const WeightMap corr = mbqc_correlations(k, w, options, rng);
    // Strongest correlation decides the merge.
    auto best = corr.begin();
    for (auto it = corr.begin(); it != corr.end(); ++it)
      if (std::abs(it->second) > std::abs(best->second)) best = it;
    const int u = best->first.first;
    const int v = best->first.second;
    const int sign = best->second >= 0 ? +1 : -1;

    IterativeRound info;
    info.round = round++;
    info.vertices_left = k;
    info.chosen = {u, v};
    info.correlation = best->second;
    info.anti_aligned = sign < 0;
    result.rounds.push_back(info);

    // Merge cluster v into u with relative sign; reindex v's edges.
    for (auto& [orig, s] : clusters[v]) clusters[u].push_back({orig, s * sign});
    WeightMap next;
    for (const auto& [e, wt] : w) {
      int a = e.first, b = e.second;
      real wval = wt;
      auto remap = [&](int x) {
        if (x == v) {
          wval *= sign;  // z_v = sign * z_u
          return u;
        }
        return x;
      };
      a = remap(a);
      b = remap(b);
      if (a == b) continue;  // internal edge: a constant, dropped
      next[key(a, b)] += wval;
    }
    // Compact indices: remove super-vertex v.
    clusters.erase(clusters.begin() + v);
    WeightMap compacted;
    for (const auto& [e, wt] : next) {
      if (wt == 0.0) continue;
      auto shift = [&](int x) { return x > v ? x - 1 : x; };
      compacted[key(shift(e.first), shift(e.second))] += wt;
    }
    w = std::move(compacted);
  }

  // Base case: brute force the residual instance.
  const int k = static_cast<int>(clusters.size());
  std::uint64_t base_x = 0;
  if (!w.empty()) {
    const auto residual = hamiltonian_of(k, w);
    base_x = opt::brute_force_maximum(residual).x;
  }
  // Expand to the original variables.
  std::uint64_t x = 0;
  for (int c = 0; c < k; ++c) {
    const int xc = get_bit(base_x, c);
    for (const auto& [orig, s] : clusters[c])
      x = set_bit(x, orig, s > 0 ? xc : 1 - xc);
  }
  result.x = x;
  result.value =
      qaoa::CostHamiltonian::maxcut_weighted(g, weights).evaluate(x);
  return result;
}

}  // namespace mbq::core
