#pragma once
// Iterative (quantum-enhanced greedy) optimization — the Sec. V outlook:
// "the quantum device is used to estimate a set of observable
// expectation values ... which results in a smaller problem, and the
// process is iterated until the residual problem is small enough to be
// solved exactly" (refs [56], [60], [61] of the paper).
//
// Concretely, for (weighted) MaxCut:
//   1. run shallow MBQC-QAOA on the current weighted instance and
//      estimate the edge correlations M_uv = <Z_u Z_v>;
//   2. pick the edge with the largest |M_uv| and impose the relation
//      x_u = x_v (M > 0) or x_u != x_v (M < 0);
//   3. contract the two vertices (weights of parallel edges add, with a
//      sign flip for anti-alignment), shrinking the instance by one;
//   4. repeat until the residual instance is brute-forceable.
// Every expectation is obtained through the measurement-based protocol.

#include <cstdint>
#include <string>
#include <vector>

#include "mbq/common/rng.h"
#include "mbq/graph/graph.h"
#include "mbq/qaoa/hamiltonian.h"

namespace mbq::core {

struct IterativeOptions {
  /// Solve exactly once the instance has at most this many vertices.
  int base_case_size = 4;
  /// Grid resolution for the per-round (gamma, beta) search.
  int angle_grid = 16;
};

struct IterativeRound {
  int round = 0;
  int vertices_left = 0;
  Edge chosen{};
  real correlation = 0.0;
  bool anti_aligned = false;
};

struct IterativeResult {
  std::uint64_t x = 0;   // assignment on the ORIGINAL vertices
  real value = 0.0;      // cut value achieved
  std::vector<IterativeRound> rounds;
};

/// Iterative MBQC-QAOA solver for weighted MaxCut.  `weights` indexed
/// like g.edges(); pass all-ones for unweighted.
IterativeResult iterative_maxcut(const Graph& g,
                                 const std::vector<real>& weights,
                                 const IterativeOptions& options, Rng& rng);

}  // namespace mbq::core
