#include "mbq/core/protocol.h"

#include "mbq/api/mbqc_backend.h"
#include "mbq/api/workload.h"
#include "mbq/common/error.h"

namespace mbq::core {

MbqcQaoaSolver::MbqcQaoaSolver(qaoa::CostHamiltonian cost, CorrectionMode mode,
                               LinearTermStyle linear_style)
    : workload_(std::make_unique<api::Workload>(
          api::Workload::qaoa(std::move(cost)).with_linear_style(
              linear_style))),
      backend_(std::make_unique<api::MbqcBackend>(mode)),
      mode_(mode) {}

MbqcQaoaSolver::~MbqcQaoaSolver() = default;

MbqcQaoaSolver::MbqcQaoaSolver(const MbqcQaoaSolver& other)
    : workload_(std::make_unique<api::Workload>(*other.workload_)),
      backend_(std::make_unique<api::MbqcBackend>(other.backend_->mode())),
      mode_(other.mode_) {}

MbqcQaoaSolver& MbqcQaoaSolver::operator=(const MbqcQaoaSolver& other) {
  if (this != &other) {
    workload_ = std::make_unique<api::Workload>(*other.workload_);
    backend_ = std::make_unique<api::MbqcBackend>(other.backend_->mode());
    mode_ = other.mode_;
  }
  return *this;
}

const qaoa::CostHamiltonian& MbqcQaoaSolver::cost() const noexcept {
  return workload_->cost();
}

CompiledPattern MbqcQaoaSolver::compile(const qaoa::Angles& angles) const {
  return workload_->compile_pattern(angles, mode_ == CorrectionMode::Quantum);
}

real MbqcQaoaSolver::expectation(const qaoa::Angles& angles, Rng& rng) const {
  return backend_->expectation(*workload_, angles, rng, nullptr);
}

std::vector<ShotRecord> MbqcQaoaSolver::sample(const qaoa::Angles& angles,
                                               int shots, Rng& rng) const {
  const std::vector<std::uint64_t> xs =
      backend_->sample(*workload_, angles, shots, rng, nullptr);
  std::vector<ShotRecord> out;
  out.reserve(xs.size());
  for (const std::uint64_t x : xs)
    out.push_back({x, workload_->cost().evaluate(x)});
  return out;
}

ShotRecord MbqcQaoaSolver::best_of(const qaoa::Angles& angles, int shots,
                                   Rng& rng) const {
  const auto samples = sample(angles, shots, rng);
  ShotRecord best = samples.front();
  for (const auto& s : samples)
    if (s.cost > best.cost) best = s;
  return best;
}

}  // namespace mbq::core
