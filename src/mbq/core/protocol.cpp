#include "mbq/core/protocol.h"

#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/mbqc/runner.h"

namespace mbq::core {

MbqcQaoaSolver::MbqcQaoaSolver(qaoa::CostHamiltonian cost, CorrectionMode mode,
                               LinearTermStyle linear_style)
    : cost_(std::move(cost)), mode_(mode) {
  options_.linear_style = linear_style;
  options_.final_corrections = mode_ == CorrectionMode::Quantum;
}

CompiledPattern MbqcQaoaSolver::compile(const qaoa::Angles& angles) const {
  return compile_qaoa(cost_, angles, options_);
}

real MbqcQaoaSolver::expectation(const qaoa::Angles& angles, Rng& rng) const {
  // One adaptive run; determinism makes the output state branch-free.
  // In classical mode the X byproducts permute basis states, so <C> must
  // be computed on the corrected distribution: fold the flip into the
  // cost argument.
  const CompiledPattern cp = compile(angles);
  const mbqc::RunResult r = mbqc::run(cp.pattern, rng);
  const int n = cost_.num_qubits();
  std::uint64_t flip = 0;
  for (int q = 0; q < n; ++q)
    if (!cp.final_fx[q].empty() && cp.final_fx[q].evaluate(r.outcomes))
      flip |= std::uint64_t{1} << q;
  real acc = 0.0;
  for (std::uint64_t x = 0; x < r.output_state.size(); ++x)
    acc += std::norm(r.output_state[x]) * cost_.evaluate(x ^ flip);
  return acc;
}

std::vector<ShotRecord> MbqcQaoaSolver::sample(const qaoa::Angles& angles,
                                               int shots, Rng& rng) const {
  MBQ_REQUIRE(shots >= 1, "need at least one shot, got " << shots);
  const CompiledPattern cp = compile(angles);
  const int n = cost_.num_qubits();
  std::vector<ShotRecord> out;
  out.reserve(static_cast<std::size_t>(shots));
  for (int s = 0; s < shots; ++s) {
    const mbqc::RunResult r = mbqc::run(cp.pattern, rng);
    // Final computational-basis readout of the output register.
    real u = rng.uniform();
    std::uint64_t x = 0;
    for (std::uint64_t i = 0; i < r.output_state.size(); ++i) {
      u -= std::norm(r.output_state[i]);
      if (u <= 0.0) {
        x = i;
        break;
      }
      if (i + 1 == r.output_state.size()) x = i;
    }
    // Classical correction mode: X byproducts flip readout bits.
    for (int q = 0; q < n; ++q)
      if (!cp.final_fx[q].empty() && cp.final_fx[q].evaluate(r.outcomes))
        x = flip_bit(x, q);
    out.push_back({x, cost_.evaluate(x)});
  }
  return out;
}

ShotRecord MbqcQaoaSolver::best_of(const qaoa::Angles& angles, int shots,
                                   Rng& rng) const {
  const auto samples = sample(angles, shots, rng);
  ShotRecord best = samples.front();
  for (const auto& s : samples)
    if (s.cost > best.cost) best = s;
  return best;
}

}  // namespace mbq::core
