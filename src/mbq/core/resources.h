#pragma once
// Resource accounting (Sec. III-A of the paper).
//
// The paper bounds, for QAOA_p on an interaction graph (V, E) with no
// single-qubit cost terms:
//     N_Q <= p (|E| + 2|V|)          (ancilla qubits)
//     N_E <= p (2|E| + 2|V|)         (CZ entanglers / graph-state edges)
// plus one extra qubit and entangler per vertex per layer when linear
// terms are present, and compares with the gate model (|V| qubits, at
// least 2p|E| entangling gates for standard compilations).
//
// estimate() returns the closed-form bounds; measure() counts the actual
// compiled pattern; the two must coincide for QUBO costs (tests assert
// exact equality, reproducing the formulas rather than just bounding).

#include "mbq/core/compiler.h"
#include "mbq/qaoa/hamiltonian.h"

namespace mbq::core {

struct ResourceEstimate {
  // Closed-form (paper) quantities.
  int paper_ancilla_bound = 0;     // N_Q
  int paper_entangler_bound = 0;   // N_E
  int gate_model_qubits = 0;       // |V|
  int gate_model_entanglers = 0;   // 2 p |E| (standard compilation)
  // Measured quantities (filled by measure()).
  int ancillas = 0;                // prepared wires minus |V|
  int total_wires = 0;
  int entanglers = 0;
  int measurements = 0;
};

/// Closed-form estimate for QAOA_p on this cost function (general PUBO:
/// one ancilla per term per layer, |S| entanglers per term, 2 per vertex
/// for the mixer).
ResourceEstimate estimate_resources(const qaoa::CostHamiltonian& cost, int p);

/// Count the actual resources of a compiled pattern (fills the measured
/// fields of an estimate for easy comparison).
ResourceEstimate measure_resources(const qaoa::CostHamiltonian& cost, int p,
                                   const CompiledPattern& compiled);

}  // namespace mbq::core
