#include "mbq/core/compiler.h"

#include "mbq/common/error.h"

namespace mbq::core {

namespace {

/// Shared emission machinery: wires with symbolic byproduct frames,
/// YZ phase gadgets and XY J-steps.
class GadgetCompiler {
 public:
  GadgetCompiler(mbqc::Pattern& p, int n, int max_wire_degree = 0,
                 const mbqc::ScheduleHints& hints = {})
      : p_(p), max_degree_(max_wire_degree), defer_(hints.defer_initial_preps),
        cur_(n), prepped_(n, !hints.defer_initial_preps), degree_(n, 0),
        fx_(n), fz_(n) {
    MBQ_REQUIRE(max_degree_ == 0 || max_degree_ >= 3,
                "max_wire_degree must be 0 (unlimited) or >= 3, got "
                    << max_degree_);
    for (int q = 0; q < n; ++q) {
      cur_[q] = next_wire_++;
      // |+>^n initial state (Sec. II-C); with the scheduling hint the
      // prep is deferred to the wire's first entangling use instead, so
      // untouched wires stay out of the executor's live register.
      if (!defer_) p_.add_prep(cur_[q]);
    }
  }

  /// YZ-gadget: exp(-i theta/2 Z_S) on logical qubits S (Eq. (8)/(10)).
  /// Identically-zero angles emit nothing: exp(0) = I contributes no
  /// phase on ANY branch, and the skipped outcome's Z-byproducts drop
  /// with it, so the pattern stays deterministic with one fewer ancilla.
  /// Unconditional (not gated on spec optimization) — this is what keeps
  /// optimized specs, whose zero-coefficient terms the canonicalize pass
  /// already removed, lowering to byte-identical patterns.
  void phase_gadget(const std::vector<int>& support, real theta) {
    if (theta == 0.0) return;
    for (int q : support) reserve_degree(q, 1);
    for (int q : support) ensure_prepped(q);
    const int a = next_wire_++;
    p_.add_prep(a);
    SignalExpr sign;
    for (int q : support) {
      p_.add_entangle(a, cur_[q]);
      ++degree_[q];
      sign ^= fx_[q];
    }
    const signal_t m = p_.add_measure(a, MeasBasis::YZ, theta, sign, {});
    for (int q : support) fz_[q] ^= SignalExpr(m);
  }

  /// J(alpha) = H Rz(alpha) on logical qubit q (one Eq. (9) step).
  void j_step(int q, real alpha) {
    ensure_prepped(q);
    const int a = next_wire_++;
    p_.add_prep(a);
    p_.add_entangle(cur_[q], a);
    const signal_t m =
        p_.add_measure(cur_[q], MeasBasis::XY, -alpha, fx_[q], fz_[q]);
    fz_[q] = fx_[q];
    fx_[q] = SignalExpr(m);
    cur_[q] = a;
    degree_[q] = 1;  // the fresh qubit already carries the teleport edge
  }

  /// Un-fusing (Sec. III / ref [49]): if attaching `extra` more CZ edges
  /// to q's current qubit would exceed the degree bound, teleport the
  /// wire to a fresh qubit through an identity J(0) J(0) = I chain.  The
  /// byproduct frames absorb the corrections automatically.
  void reserve_degree(int q, int extra) {
    if (max_degree_ == 0) return;
    // Keep one slot spare for the edge that eventually teleports this
    // qubit out (mixer or identity J-step), so the final graph degree
    // never exceeds the bound.
    if (degree_[q] + extra + 1 <= max_degree_) return;
    j_step(q, 0.0);
    j_step(q, 0.0);
  }

  /// exp(-i beta X_q), optionally preceded by Rz(phi):
  /// RX(2 beta) Rz(phi) = J(2 beta) J(phi) — the Eq. (9) chain.
  void mixer(int q, real beta, real fused_rz_angle = 0.0) {
    j_step(q, fused_rz_angle);
    j_step(q, 2.0 * beta);
  }

  /// CZ between two logical wires (frames commute as CZ X_u = X_u Z_v CZ).
  void cz(int u, int v) {
    reserve_degree(u, 1);
    reserve_degree(v, 1);
    ensure_prepped(u);
    ensure_prepped(v);
    p_.add_entangle(cur_[u], cur_[v]);
    ++degree_[u];
    ++degree_[v];
    const SignalExpr fxu = fx_[u];
    fz_[u] ^= fx_[v];
    fz_[v] ^= fxu;
  }

  CompiledPattern finish(bool final_corrections) {
    // Wires nothing ever touched still exist as |+> outputs.
    for (std::size_t q = 0; q < cur_.size(); ++q)
      ensure_prepped(static_cast<int>(q));
    CompiledPattern out;
    for (std::size_t q = 0; q < cur_.size(); ++q) {
      if (final_corrections) {
        if (!fx_[q].empty()) p_.add_correct_x(cur_[q], fx_[q]);
        if (!fz_[q].empty()) p_.add_correct_z(cur_[q], fz_[q]);
        out.final_fx.emplace_back();
        out.final_fz.emplace_back();
      } else {
        out.final_fx.push_back(fx_[q]);
        out.final_fz.push_back(fz_[q]);
      }
      out.output_wires.push_back(cur_[q]);
    }
    p_.set_outputs(out.output_wires);
    return out;
  }

 private:
  void ensure_prepped(int q) {
    if (prepped_[q]) return;
    p_.add_prep(cur_[q]);
    prepped_[q] = true;
  }

  mbqc::Pattern& p_;
  int max_degree_ = 0;
  bool defer_ = false;
  int next_wire_ = 0;
  std::vector<int> cur_;
  std::vector<char> prepped_;
  std::vector<int> degree_;  // CZ edges on each wire's CURRENT qubit
  std::vector<SignalExpr> fx_, fz_;
};

}  // namespace

CompiledPattern compile_qaoa(const qaoa::CostHamiltonian& cost,
                             const qaoa::Angles& angles,
                             const CompileOptions& options) {
  const int n = cost.num_qubits();
  CompiledPattern out;
  mbqc::Pattern pattern;
  GadgetCompiler gc(pattern, n, options.max_wire_degree, options.hints);

  // Linear coefficients, for the fused-mixer variant.
  std::vector<real> linear(n, 0.0);
  for (const auto& t : cost.terms())
    if (t.support.size() == 1) linear[t.support[0]] = t.coeff;

  for (int k = 0; k < angles.p(); ++k) {
    const real gamma = angles.gamma[k];
    const real beta = angles.beta[k];
    // Phase-separation layer: one gadget per Ising term (all terms
    // commute, so emission order is irrelevant).
    for (const auto& t : cost.terms()) {
      if (t.support.size() == 1 &&
          options.linear_style == LinearTermStyle::FusedIntoMixer)
        continue;
      gc.phase_gadget(t.support, 2.0 * gamma * t.coeff);
    }
    // Mixing layer.
    for (int q = 0; q < n; ++q) {
      const real fused =
          options.linear_style == LinearTermStyle::FusedIntoMixer
              ? 2.0 * gamma * linear[q]
              : 0.0;
      gc.mixer(q, beta, fused);
    }
  }

  CompiledPattern result = gc.finish(options.final_corrections);
  result.pattern = std::move(pattern);
  result.pattern.validate();
  return result;
}

CompiledPattern compile_circuit_tailored(const Circuit& circuit,
                                         const CompileOptions& options) {
  const Circuit c = circuit.expand_controlled_gates();
  CompiledPattern out;
  mbqc::Pattern pattern;
  GadgetCompiler gc(pattern, c.num_qubits(), options.max_wire_degree,
                    options.hints);

  for (const Gate& g : c.gates()) {
    switch (g.kind) {
      case GateKind::H:
        gc.j_step(g.qubits[0], 0.0);
        break;
      case GateKind::Rz:
        gc.phase_gadget({g.qubits[0]}, g.angle);
        break;
      case GateKind::Z:
        gc.phase_gadget({g.qubits[0]}, kPi);
        break;
      case GateKind::S:
        gc.phase_gadget({g.qubits[0]}, kPi / 2);
        break;
      case GateKind::Sdg:
        gc.phase_gadget({g.qubits[0]}, -kPi / 2);
        break;
      case GateKind::T:
        gc.phase_gadget({g.qubits[0]}, kPi / 4);
        break;
      case GateKind::Tdg:
        gc.phase_gadget({g.qubits[0]}, -kPi / 4);
        break;
      case GateKind::Rx:
        gc.j_step(g.qubits[0], 0.0);
        gc.j_step(g.qubits[0], g.angle);
        break;
      case GateKind::X:
        gc.j_step(g.qubits[0], 0.0);
        gc.j_step(g.qubits[0], kPi);
        break;
      case GateKind::Y:
        gc.phase_gadget({g.qubits[0]}, kPi);
        gc.j_step(g.qubits[0], 0.0);
        gc.j_step(g.qubits[0], kPi);
        break;
      case GateKind::PhaseGadget:
        gc.phase_gadget(g.qubits, g.angle);
        break;
      case GateKind::Cz:
        gc.cz(g.qubits[0], g.qubits[1]);
        break;
      case GateKind::Cx:
        gc.j_step(g.qubits[1], 0.0);
        gc.cz(g.qubits[0], g.qubits[1]);
        gc.j_step(g.qubits[1], 0.0);
        break;
      case GateKind::ControlledExpX:
        throw InternalError("controlled gates were expanded above");
    }
  }

  CompiledPattern result = gc.finish(options.final_corrections);
  result.pattern = std::move(pattern);
  result.pattern.validate();
  return result;
}

}  // namespace mbq::core
