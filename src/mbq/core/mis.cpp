#include "mbq/core/mis.h"

#include "mbq/qaoa/mixers.h"

namespace mbq::core {

CompiledPattern compile_mis_qaoa(const Graph& g, const qaoa::Angles& angles,
                                 const CompileOptions& options) {
  return compile_mis_qaoa_weighted(
      g, std::vector<real>(static_cast<std::size_t>(g.num_vertices()), 1.0),
      angles, options);
}

CompiledPattern compile_mis_qaoa_weighted(const Graph& g,
                                          const std::vector<real>& weights,
                                          const qaoa::Angles& angles,
                                          const CompileOptions& options) {
  const int n = g.num_vertices();
  // Pattern wires start in |+>; H turns them into the feasible |0...0>.
  Circuit c(n);
  for (int q = 0; q < n; ++q) c.h(q);
  c.append(qaoa::mis_qaoa_circuit_weighted(g, weights, angles));
  return compile_circuit_tailored(c, options);
}

std::int64_t mis_partial_mixer_gadget_count(const Graph& g, int v) {
  return std::int64_t{1} << g.degree(v);
}

std::int64_t mis_mixer_layer_gadget_count(const Graph& g) {
  std::int64_t total = 0;
  for (int v = 0; v < g.num_vertices(); ++v)
    total += mis_partial_mixer_gadget_count(g, v);
  return total;
}

}  // namespace mbq::core
