#pragma once
// The paper's contribution: compiling QAOA (for arbitrary depth p, on
// arbitrary QUBO/PUBO cost functions) into deterministic measurement
// patterns — Sec. III, Eqs. (8), (9), (10) and (12).
//
// Construction, per QAOA layer k (angles gamma_k, beta_k):
//
//  * each Ising term w_S Z_S becomes ONE ancilla, CZ-entangled to every
//    wire in S, measured in the YZ plane at angle 2 gamma_k w_S (sign
//    adapted by the accumulated X-frame parity of S — the paper's
//    (-1)^{...} adaptations); the outcome adds a Z byproduct to every
//    wire of S (the "m_uv pi" spiders of Eq. (8)).  |S| = 2 is the
//    per-edge gadget; |S| = 1 is the single-qubit rotation of Eq. (10)
//    ("one additional qubit and entangling gate per vertex"); |S| > 2
//    covers the higher-order extension mentioned in Sec. III.
//
//  * the mixer exp(-i beta_k X_v) becomes the two-ancilla J-chain of
//    Eq. (9): J(2 beta_k) . J(0); the wire qubit is measured in XY and
//    its state teleports to the second ancilla, with the first
//    measurement angle sign-adapted — the paper's (-1)^{m_u} beta.
//
// Byproduct frames are tracked symbolically (SignalExpr), so the emitted
// pattern contains the paper's adaptive parities (P_u etc.) explicitly
// and is deterministic by construction; tests verify branch-independence
// and gflow existence.

#include <unordered_map>

#include "mbq/circuit/circuit.h"
#include "mbq/mbqc/pattern.h"
#include "mbq/mbqc/schedule_hints.h"
#include "mbq/qaoa/hamiltonian.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::core {

/// Whether byproduct operators are fixed by terminal X/Z correction
/// commands in the pattern (Quantum) or exported as frames and applied
/// to samples classically (ClassicalPostProcess) — the resource-free
/// hardware option benchmarked by bench_ablations.
enum class CorrectionMode : std::uint8_t { Quantum, ClassicalPostProcess };

enum class LinearTermStyle : std::uint8_t {
  /// Paper-faithful: one YZ-gadget ancilla per vertex with a linear term
  /// (Eq. (10); +1 qubit, +1 CZ per vertex per layer).
  Gadget,
  /// Optimization (ablation): fold the linear rotation into the first
  /// mixer J angle — J(2 beta) J(phi) instead of J(2 beta) J(0); zero
  /// extra ancillas.
  FusedIntoMixer,
};

struct CompileOptions {
  LinearTermStyle linear_style = LinearTermStyle::Gadget;
  /// Emit terminal X/Z correction commands (quantum corrections).  When
  /// false the byproduct frames are exported for classical
  /// post-processing of samples instead.
  bool final_corrections = true;
  /// Bound on the number of CZ edges any single physical qubit may carry
  /// (0 = unlimited).  When a wire is about to exceed the bound, an
  /// identity teleport J(0)∘J(0) = I moves it to a fresh qubit — the
  /// "un-fusing" the paper points to for compiling the resource state
  /// onto degree-limited hardware graphs (Sec. III, ref [49]).  Costs two
  /// ancillas and two CZ per split; must be >= 3 when set.
  int max_wire_degree = 0;
  /// Measurement-order scheduling hints from the spec-level compiler
  /// (speccomp's opt-in "schedule" pass); default-constructed hints are
  /// a no-op and leave emission byte-identical to hint-free compilation.
  mbqc::ScheduleHints hints;
};

struct CompiledPattern {
  mbqc::Pattern pattern;
  /// Output wire per logical qubit.
  std::vector<int> output_wires;
  /// Final byproduct frames per logical qubit (empty when corrections
  /// were emitted): a set X^{fx} Z^{fz} relating the raw output state to
  /// the ideal one.  In sampling mode only fx matters: it flips bits.
  std::vector<SignalExpr> final_fx;
  std::vector<SignalExpr> final_fz;
};

/// Compile QAOA_p for the given cost function and angles.
CompiledPattern compile_qaoa(const qaoa::CostHamiltonian& cost,
                             const qaoa::Angles& angles,
                             const CompileOptions& options = {});

/// Tailored translation of a general circuit acting on |+...+>: diagonal
/// gates (Rz, S, T, Z, phase gadgets) use zero-teleportation YZ gadgets;
/// only Hadamard-like gates consume wires via J steps.  Used for the MIS
/// ansatz (Sec. IV) and the XY mixers (Sec. V).
CompiledPattern compile_circuit_tailored(const Circuit& circuit,
                                         const CompileOptions& options = {});

}  // namespace mbq::core
