#pragma once
// MIS in the MBQC paradigm (Sec. IV).
//
// The partial mixer U_v(beta) = Lambda_{N(v)}(e^{i beta X_v}) is expanded
// into multi-qubit phase gadgets (the phase-polynomial form of the
// ZH-derived diagram: one parameterized interaction per subset of N(v)),
// conjugated by Hadamards on v.  Every piece then maps to MBQC with the
// same machinery as the QUBO case: phase gadgets use one YZ ancilla each
// and the Hadamards are J(0) steps.  The gadget count is exponential in
// deg(v) — the honest cost of a generic multi-controlled rotation, which
// bench_mis quantifies.

#include "mbq/core/compiler.h"
#include "mbq/graph/graph.h"

namespace mbq::core {

/// Compile the full MIS-QAOA ansatz (initial feasible state |0...0>,
/// initial mixer, then p phase/mixer layers) to a measurement pattern.
CompiledPattern compile_mis_qaoa(const Graph& g, const qaoa::Angles& angles,
                                 const CompileOptions& options = {});

/// Weighted variant: phase rotations scale with the per-vertex weights
/// (cost c(x) = sum_v weights[v] x_v); all-ones weights reproduce the
/// unweighted pattern exactly.
CompiledPattern compile_mis_qaoa_weighted(const Graph& g,
                                          const std::vector<real>& weights,
                                          const qaoa::Angles& angles,
                                          const CompileOptions& options = {});

/// Number of YZ gadgets needed for one partial mixer on vertex v.
std::int64_t mis_partial_mixer_gadget_count(const Graph& g, int v);

/// Total gadgets for a full mixer layer.
std::int64_t mis_mixer_layer_gadget_count(const Graph& g);

}  // namespace mbq::core
