#pragma once
// Stabilizer-tableau adapter ("clifford").
//
// When every measurement angle of the compiled pattern is a multiple of
// pi/2 the whole adaptive protocol is Clifford, so it runs on the
// Aaronson-Gottesman tableau — resource states of hundreds-to-thousands
// of qubits become tractable where statevectors cannot reach.  With
// quantum corrections a single run collapses to the exact QAOA state, so
// expectation() reads each Ising term off the tableau as an exact
// Z_S-expectation in {-1, 0, +1}.

#include "mbq/api/backend.h"

namespace mbq::api {

class CliffordBackend final : public Backend {
 public:
  std::string name() const override { return "clifford"; }
  Capabilities capabilities() const override;

  /// Refines the generic checks by testing that all measurement angles
  /// of the compiled pattern are pi/2 multiples (reusing `prep` when the
  /// caller already holds the compilation).
  std::string unsupported_reason(const Workload& w, const qaoa::Angles& a,
                                 const Prepared* prep) const override;

  std::shared_ptr<const Prepared> prepare(const Workload& w,
                                          const qaoa::Angles& a) const override;
  real expectation(const Workload& w, const qaoa::Angles& a, Rng& rng,
                   const Prepared* prep) const override;
  std::uint64_t sample_one(const Workload& w, const qaoa::Angles& a, Rng& rng,
                           const Prepared* prep) const override;
};

}  // namespace mbq::api
