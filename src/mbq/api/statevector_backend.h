#pragma once
// Gate-model statevector adapter ("statevector").
//
// The exact-reference backend: runs the workload's gate-model ansatz on
// the dense simulator (the fast diagonal path for standard QAOA) and
// reads expectations/samples off the amplitudes.  prepare() stores the
// evaluated state plus a cumulative distribution so batched sampling is
// a binary search per shot.

#include "mbq/api/backend.h"

namespace mbq::api {

class StatevectorBackend final : public Backend {
 public:
  std::string name() const override { return "statevector"; }
  Capabilities capabilities() const override;

  std::shared_ptr<const Prepared> prepare(const Workload& w,
                                          const qaoa::Angles& a) const override;
  real expectation(const Workload& w, const qaoa::Angles& a, Rng& rng,
                   const Prepared* prep) const override;
  std::uint64_t sample_one(const Workload& w, const qaoa::Angles& a, Rng& rng,
                           const Prepared* prep) const override;
};

}  // namespace mbq::api
