#pragma once
// Umbrella header for the unified execution-backend API.
//
//   WorkloadSpec — the declarative, serializable workload IR
//   Workload  — what to run (cost Hamiltonian + ansatz/compile options)
//   Backend   — how to run it (statevector / mbqc / clifford / zx / router)
//   Registry  — string-keyed backend selection ("mbqc", "statevector", ...)
//   Session   — rng ownership, per-angle prepare() cache, parallel shots,
//               batched/async angle evaluation

#include "mbq/api/backend.h"
#include "mbq/api/clifford_backend.h"
#include "mbq/api/mbqc_backend.h"
#include "mbq/api/registry.h"
#include "mbq/api/router_backend.h"
#include "mbq/api/session.h"
#include "mbq/api/statevector_backend.h"
#include "mbq/api/workload.h"
#include "mbq/api/workload_spec.h"
#include "mbq/api/zx_backend.h"
