#include "mbq/api/mbqc_backend.h"

#include "mbq/api/prepared.h"
#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/mbqc/compiled.h"

namespace mbq::api {

namespace {

/// X-byproduct mask over the problem register for one finished run
/// (empty frames when quantum corrections were emitted).
std::uint64_t byproduct_flips(const core::CompiledPattern& cp, int n,
                              const std::vector<int>& outcomes) {
  std::uint64_t flip = 0;
  for (int q = 0; q < n; ++q)
    if (!cp.final_fx[q].empty() && cp.final_fx[q].evaluate(outcomes))
      flip |= std::uint64_t{1} << q;
  return flip;
}

}  // namespace

std::string MbqcBackend::name() const {
  return mode_ == core::CorrectionMode::Quantum ? "mbqc" : "mbqc-classical";
}

Capabilities MbqcBackend::capabilities() const {
  Capabilities caps;
  caps.summary =
      mode_ == core::CorrectionMode::Quantum
          ? "full adaptive measurement protocol with quantum corrections"
          : "adaptive protocol, byproducts fixed by classical post-processing";
  // Live-width ~ problem register + gadget ancillas; the threaded
  // chunked kernels and the optional f32 storage push the practical
  // ceiling past the old n = 20.
  caps.max_qubits = 24;
  // The dynamic-statevector runner models the entangler depolarizing
  // channel, so noisy workloads execute here (and only here).
  caps.supports_noise = true;
  // The same runner owns the f32 statevector storage path.
  caps.supports_f32_storage = true;
  return caps;
}

namespace {

mbqc::ExecOptions exec_options_for(const Workload& w) {
  mbqc::ExecOptions opt;
  opt.entangler_noise = w.entangler_noise();
  opt.precision = w.precision();
  return opt;
}

}  // namespace

std::shared_ptr<const Prepared> MbqcBackend::prepare(
    const Workload& w, const qaoa::Angles& a) const {
  auto prep = std::make_shared<PreparedPattern>();
  prep->compiled =
      w.compile_pattern(a, mode_ == core::CorrectionMode::Quantum);
  // Lower to the flat op tape here, once per (workload, angles):
  // Session's prepare-cache keeps the whole artifact, so every
  // subsequent expectation/sample shot replays the tape only.
  prep->executable =
      std::make_shared<const mbqc::CompiledPattern>(prep->compiled.pattern);
  return prep;
}

real MbqcBackend::expectation(const Workload& w, const qaoa::Angles& a,
                              Rng& rng, const Prepared* prep) const {
  std::shared_ptr<const Prepared> local;
  if (prep == nullptr) {
    local = prepare(w, a);
    prep = local.get();
  }
  const core::CompiledPattern& cp = pattern_of(prep);
  // One adaptive run; determinism makes the output state branch-free
  // (under entangler noise the run is a single noisy trajectory, so the
  // value is a stochastic estimate — deterministic in the rng stream,
  // but no longer the exact noiseless <C>).  In classical mode the X
  // byproducts permute basis states, so <C> is computed on the corrected
  // distribution by folding the flip mask into the cost argument.
  const mbqc::RunResult r =
      mbqc::thread_local_executor(executable_of(prep), exec_options_for(w))
          .run(rng);
  const std::uint64_t flip = byproduct_flips(cp, w.num_qubits(), r.outcomes);
  real acc = 0.0;
  for (std::uint64_t x = 0; x < r.output_state.size(); ++x)
    acc += std::norm(r.output_state[x]) * w.cost().evaluate(x ^ flip);
  return acc;
}

std::uint64_t MbqcBackend::sample_one(const Workload& w, const qaoa::Angles& a,
                                      Rng& rng, const Prepared* prep) const {
  std::shared_ptr<const Prepared> local;
  if (prep == nullptr) {
    local = prepare(w, a);
    prep = local.get();
  }
  const core::CompiledPattern& cp = pattern_of(prep);
  // The tape replays on this thread's warm executor arena: the whole
  // shot loop above us (Session::sample fans shots across threads)
  // performs no per-shot validation, lowering, or basis construction,
  // and the final computational-basis readout samples straight from the
  // arena — no per-shot output_state copy either.
  mbqc::PatternExecutor& executor =
      mbqc::thread_local_executor(executable_of(prep), exec_options_for(w));
  const std::uint64_t x = executor.run_sample(rng).x;
  // Classical correction mode: X byproducts flip readout bits.
  return x ^ byproduct_flips(cp, w.num_qubits(), executor.last_outcomes());
}

}  // namespace mbq::api
