#include "mbq/api/clifford_backend.h"

#include "mbq/api/prepared.h"
#include "mbq/common/error.h"
#include "mbq/mbqc/clifford_runner.h"

namespace mbq::api {

Capabilities CliffordBackend::capabilities() const {
  Capabilities caps;
  caps.summary =
      "stabilizer tableau at Clifford angles; scales to thousands of "
      "pattern qubits";
  caps.max_qubits = 64;  // PauliString-free Z_S readout works per word
  caps.clifford_angles_only = true;
  return caps;
}

std::string CliffordBackend::unsupported_reason(const Workload& w,
                                                const qaoa::Angles& a,
                                                const Prepared* prep) const {
  std::string generic = Backend::unsupported_reason(w, a, prep);
  if (!generic.empty()) return generic;
  core::CompiledPattern local;
  if (prep == nullptr) local = w.compile_pattern(a, true);
  const core::CompiledPattern& cp =
      prep != nullptr ? pattern_of(prep) : local;
  if (!mbqc::is_clifford_pattern(cp.pattern))
    return "compiled pattern has non-Clifford measurement angles (every "
           "2*gamma*w_S and 2*beta must be a multiple of pi/2)";
  return {};
}

std::shared_ptr<const Prepared> CliffordBackend::prepare(
    const Workload& w, const qaoa::Angles& a) const {
  auto prep = std::make_shared<PreparedPattern>();
  prep->compiled = w.compile_pattern(a, true);
  return prep;
}

real CliffordBackend::expectation(const Workload& w, const qaoa::Angles& a,
                                  Rng& rng, const Prepared* prep) const {
  std::shared_ptr<const Prepared> local;
  if (prep == nullptr) {
    local = prepare(w, a);
    prep = local.get();
  }
  const core::CompiledPattern& cp = pattern_of(prep);
  // With terminal corrections the run is deterministic: the post-run
  // tableau restricted to the output qubits IS the QAOA state, and each
  // Ising term reads off as an exact integer Z_S expectation.
  const mbqc::CliffordRunResult r = mbqc::run_clifford(cp.pattern, rng);
  real acc = w.cost().constant();
  for (const auto& term : w.cost().terms()) {
    std::vector<int> qubits;
    qubits.reserve(term.support.size());
    for (int q : term.support) qubits.push_back(r.output_qubits[q]);
    acc += term.coeff * r.tableau.expectation_zs(qubits);
  }
  return acc;
}

std::uint64_t CliffordBackend::sample_one(const Workload& w,
                                          const qaoa::Angles& a, Rng& rng,
                                          const Prepared* prep) const {
  std::shared_ptr<const Prepared> local;
  if (prep == nullptr) {
    local = prepare(w, a);
    prep = local.get();
  }
  const core::CompiledPattern& cp = pattern_of(prep);
  // Fresh adaptive run per shot, then a computational-basis readout of
  // the (corrected) output register on the tableau.
  mbqc::CliffordRunResult r = mbqc::run_clifford(cp.pattern, rng);
  std::uint64_t x = 0;
  for (int q = 0; q < w.num_qubits(); ++q)
    if (r.tableau.measure_z(r.output_qubits[q], rng))
      x |= std::uint64_t{1} << q;
  return x;
}

}  // namespace mbq::api
