#include "mbq/api/router_backend.h"

#include <algorithm>
#include <cmath>

#include "mbq/api/registry.h"
#include "mbq/common/error.h"

namespace mbq::api {

namespace {

/// Routing artifact: the decision plus the chosen (and, in cross-check
/// mode, the checking) adapter with its own prepared artifact — so the
/// Session's per-angle cache also caches the routing decision.
struct PreparedRoute final : Prepared {
  RouteDecision decision;
  std::shared_ptr<Backend> chosen;
  std::shared_ptr<const Prepared> inner;
  std::shared_ptr<Backend> checker;
  std::shared_ptr<const Prepared> checker_inner;
};

const PreparedRoute& route_of(const Prepared* prep) {
  const auto* p = dynamic_cast<const PreparedRoute*>(prep);
  MBQ_ASSERT(p != nullptr);
  return *p;
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += " > ";
    out += n;
  }
  return out;
}

std::string no_capable_adapter(const RouteDecision& d) {
  std::string out = "no capable adapter among the candidates —";
  for (const auto& [name, why] : d.rejected) out += " " + name + ": " + why + ";";
  out.pop_back();
  return out;
}

}  // namespace

RouterBackend::RouterBackend(RouterOptions options)
    : options_(std::move(options)) {
  MBQ_REQUIRE(!options_.candidates.empty(),
              "router needs at least one candidate backend");
  auto& registry = BackendRegistry::instance();
  backends_.reserve(options_.candidates.size());
  for (const std::string& name : options_.candidates) {
    MBQ_REQUIRE(name != "router" && name != "router-checked",
                "router cannot route to itself ('" << name << "')");
    backends_.push_back(registry.create(name));
  }
}

Capabilities RouterBackend::capabilities() const {
  Capabilities caps;
  caps.summary =
      "cost-routing meta-backend: per (workload, angles) delegates to the "
      "cheapest capable adapter";
  if (options_.cross_check)
    caps.summary += ", cross-checked against an independent second adapter";
  caps.max_qubits = 0;
  caps.clifford_angles_only = true;
  caps.supports_mis_ansatz = false;
  caps.supports_custom_ansatz = false;
  // Term order / noise: the router can run whatever its most capable
  // candidate can — unlimited (0) if any candidate is unlimited, the
  // max bound otherwise.
  caps.max_term_order = -1;
  for (const auto& b : backends_) {
    const Capabilities c = b->capabilities();
    caps.max_qubits = std::max(caps.max_qubits, c.max_qubits);
    caps.exact_expectation &= c.exact_expectation;
    caps.supports_sampling &= c.supports_sampling;
    caps.clifford_angles_only &= c.clifford_angles_only;
    caps.supports_mis_ansatz |= c.supports_mis_ansatz;
    caps.supports_custom_ansatz |= c.supports_custom_ansatz;
    if (c.max_term_order == 0)
      caps.max_term_order = 0;
    else if (caps.max_term_order != 0)
      caps.max_term_order = std::max(caps.max_term_order, c.max_term_order);
    caps.supports_noise |= c.supports_noise;
    caps.supports_f32_storage |= c.supports_f32_storage;
  }
  if (caps.max_term_order < 0) caps.max_term_order = 0;
  return caps;
}

RouteDecision RouterBackend::route(const Workload& w,
                                   const qaoa::Angles& a) const {
  RouteDecision d;
  for (std::size_t c = 0; c < backends_.size(); ++c) {
    const std::string& name = options_.candidates[c];
    std::string reason = backends_[c]->unsupported_reason(w, a, nullptr);
    if (reason.empty() && name == "zx" &&
        w.num_qubits() > options_.zx_max_qubits)
      reason = "routing policy reserves zx for instances with <= " +
               std::to_string(options_.zx_max_qubits) +
               " qubits, workload has " + std::to_string(w.num_qubits());
    if (!reason.empty()) {
      d.rejected.emplace_back(name, reason);
      continue;
    }
    if (d.backend_name.empty()) {
      d.backend_name = name;
      d.reason = "cheapest capable adapter (cost order: " +
                 join(options_.candidates) + ")";
      // Without cross-checking there is no need to probe the costlier
      // candidates, so `rejected` covers only those tried before the
      // choice.  Noisy workloads never get a checker: every capable
      // adapter evaluates a single stochastic noise trajectory, so two
      // independent evaluations legitimately disagree far beyond any
      // cross-check tolerance.
      if (!options_.cross_check || w.entangler_noise() > 0.0) break;
    } else {
      d.cross_check_backend = name;
      break;
    }
  }
  return d;
}

std::string RouterBackend::unsupported_reason(const Workload& w,
                                              const qaoa::Angles& a,
                                              const Prepared* prep) const {
  if (prep != nullptr) return {};  // a routed artifact exists: it ran before
  const RouteDecision d = route(w, a);
  if (!d.backend_name.empty()) return {};
  return no_capable_adapter(d);
}

std::shared_ptr<const Prepared> RouterBackend::prepare(
    const Workload& w, const qaoa::Angles& a) const {
  auto prep = std::make_shared<PreparedRoute>();
  prep->decision = route(w, a);
  MBQ_REQUIRE(!prep->decision.backend_name.empty(),
              "router cannot run this workload: "
                  << no_capable_adapter(prep->decision));
  for (std::size_t c = 0; c < backends_.size(); ++c) {
    if (options_.candidates[c] == prep->decision.backend_name)
      prep->chosen = backends_[c];
    if (!prep->decision.cross_check_backend.empty() &&
        options_.candidates[c] == prep->decision.cross_check_backend)
      prep->checker = backends_[c];
  }
  MBQ_ASSERT(prep->chosen != nullptr);
  prep->inner = prep->chosen->prepare(w, a);
  if (prep->checker != nullptr)
    prep->checker_inner = prep->checker->prepare(w, a);
  return prep;
}

real RouterBackend::expectation(const Workload& w, const qaoa::Angles& a,
                                Rng& rng, const Prepared* prep) const {
  std::shared_ptr<const Prepared> local;
  if (prep == nullptr) {
    local = prepare(w, a);
    prep = local.get();
  }
  const PreparedRoute& r = route_of(prep);
  const real value = r.chosen->expectation(w, a, rng, r.inner.get());
  if (options_.cross_check && r.checker != nullptr) {
    const real check =
        r.checker->expectation(w, a, rng, r.checker_inner.get());
    MBQ_REQUIRE(
        std::abs(value - check) <= options_.cross_check_tolerance,
        "cross-check disagreement: '"
            << r.decision.backend_name << "' = " << value << " vs '"
            << r.decision.cross_check_backend << "' = " << check
            << " (|d| = " << std::abs(value - check) << " exceeds "
            << options_.cross_check_tolerance << ")");
  }
  return value;
}

std::uint64_t RouterBackend::sample_one(const Workload& w,
                                        const qaoa::Angles& a, Rng& rng,
                                        const Prepared* prep) const {
  std::shared_ptr<const Prepared> local;
  if (prep == nullptr) {
    local = prepare(w, a);
    prep = local.get();
  }
  const PreparedRoute& r = route_of(prep);
  return r.chosen->sample_one(w, a, rng, r.inner.get());
}

}  // namespace mbq::api
