#pragma once
// Session: the user-facing façade over a (workload, backend) pair.
//
// A Session owns what the stateless backends deliberately do not:
//   * the root Rng — one seed reproduces a whole experiment;
//   * an LRU cache of prepare() artifacts keyed by the exact angle
//     values, so the variational outer loop (which revisits angles and
//     moves in small simplexes) never recompiles a pattern it has seen;
//   * parallel shot batching on common/parallel — shot s always draws
//     from stream(s) of a per-call base generator, so sample() returns
//     bit-identical results at any thread count.
//
// Construct with a registry name to stay decoupled from concrete
// adapters:
//
//   auto session = api::Session(api::Workload::maxcut(g), "mbqc");
//   real e = session.expectation(angles);
//   auto shots = session.sample(angles, 1024);
//
// The variational outer loop evaluates <C> at many nearby angle points
// (simplex vertices, gradient stencils, grid cells).  The batch/async
// entry points fan those points out on common/parallel:
//
//   std::vector<real> es = session.expectation_batch(points);
//   auto pending = session.expectation_async(angles);   // overlaps work
//
// Determinism contract: the k-th expectation this session evaluates —
// whether through expectation(), a batch slot, or a future — draws from
// rng.stream(kExpectationStreamBase + k), and shot s of sample call k
// draws from rng.stream(k).stream(s).  Both are pure functions of
// (seed, k, s), so batch results are bit-identical to the serial loop at
// every thread count — and, because worker processes re-derive the same
// streams from (seed, index) alone, at every PROCESS count too (see
// "Process sharding" below).
//
// Call-index bookkeeping: expectation_calls_ / sample_calls_ advance on
// the CALLING thread, synchronously, before any entry point returns —
// expectation_async in particular assigns its stream index before
// handing back the future.  Stream assignment is therefore a function of
// SUBMISSION order alone: any interleaving of expectation(),
// expectation_batch() and expectation_async() calls evaluates point
// number k (in submission order) on stream kExpectationStreamBase + k,
// however the futures later resolve.  The members are not synchronized —
// a Session must be driven from one thread (concurrent pending futures
// are fine; concurrent calls INTO the session are not).
//
// Process sharding: with SessionOptions::num_processes > 1 (or
// MBQ_NUM_PROCESSES set and num_processes left at 0), sample(),
// sample_batch() and expectation_batch() fan their work out across a
// pool of fork/exec'd mbq_worker processes (shard/worker_pool.h), each
// owning a contiguous slice of the call's stream-index space.  Results
// are merged in index order and are bit-identical to the in-process
// path.  Every built-in ansatz — QAOA-diagonal over any-order Ising/PUBO
// costs, (weighted) constraint-preserving MIS, declarative ParamCircuit
// ansätze, with or without entangler noise — lowers to a serializable
// WorkloadSpec and shards.  The Session falls back to in-process
// execution — silently, the results being identical either way — only
// when the workload cannot cross a process boundary (the CustomCircuit
// std::function escape hatch), the backend was not resolved
// from the registry by name, the worker executable cannot be found
// (see shard::resolve_worker_path), the pool died earlier, or the call
// is too small to split.  Cache bookkeeping under sharding: the sample
// paths still warm the parent's prepare cache exactly like the
// in-process loop; a sharded expectation_batch leaves the parent cache
// untouched (each worker prepares its own slice) and reports no
// hits/misses for the call.

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mbq/api/backend.h"
#include "mbq/common/rng.h"
#include "mbq/opt/optimizer.h"

namespace mbq::shard {
class WorkerPool;
struct Request;
}  // namespace mbq::shard

namespace mbq::serve {
class DaemonClient;
}  // namespace mbq::serve

namespace mbq::api {

struct SessionOptions {
  std::uint64_t seed = 0x51E55ED5EEDULL;
  /// Batch sample() shots across threads (results are identical either
  /// way; this is purely a wall-clock knob).
  bool parallel_shots = true;
  /// Entries kept in the per-angle prepare() cache before LRU eviction.
  std::size_t cache_capacity = 64;
  /// Worker processes for sample/sample_batch/expectation_batch.  0 (the
  /// default) reads the MBQ_NUM_PROCESSES environment variable, falling
  /// back to 1; 1 never shards; >= 2 shards across that many mbq_worker
  /// processes.  Results are bit-identical at every value — like
  /// parallel_shots, this is purely a wall-clock knob (see the "Process
  /// sharding" notes above).
  int num_processes = 0;
  /// Explicit path to the mbq_worker executable; empty uses
  /// shard::resolve_worker_path's search ($MBQ_WORKER, then next to the
  /// running executable).
  std::string worker_path;
  /// Endpoint of a running mbqd serving daemon ("unix:/path" or
  /// "tcp:host:port"); empty (the default) reads the MBQ_DAEMON_ENDPOINT
  /// environment variable, and when that is unset too the session runs
  /// locally.  With an endpoint in effect, sample(), sample_batch() and
  /// expectation_batch() execute on the daemon's shared worker fleet
  /// (serve/daemon.h) instead of session-owned processes: the daemon
  /// streams finished slices back and the session merges them in index
  /// order, so results are bit-identical to local execution.  Remote
  /// mode never falls back silently — an unreachable daemon, a version
  /// mismatch, or a workload that cannot cross a process boundary is a
  /// loud Error.  Single-point expectation()/expectation_async() stay
  /// in-process (same results either way; they are latency-bound, not
  /// throughput-bound).
  std::string daemon_endpoint;
  /// Entangler-noise probability for the workload's measurement-based
  /// execution (mbqc/runner.h's depolarizing channel).  0 leaves the
  /// workload untouched; > 0 applies Workload::with_entangler_noise at
  /// construction — a convenience so callers can dial noise per Session
  /// without rebuilding the workload.  Throws if the workload already
  /// carries a DIFFERENT non-zero noise level (ambiguous intent).  Noise
  /// draws live on the same per-shot rng streams as everything else, so
  /// noisy results keep the full determinism contract below — including
  /// bit-identical process-sharded execution.
  real entangler_noise = 0.0;
  /// Statevector storage precision for the workload's measurement-based
  /// execution.  F64 (the default) leaves the workload untouched; F32
  /// applies Workload::with_precision at construction.  Throws if the
  /// workload already carries a different non-default precision
  /// (ambiguous intent).  f32 runs are deterministic within the
  /// precision — the full contract below holds, including bit-identical
  /// sharded and remote execution — but are NOT bit-comparable to f64
  /// runs of the same workload.
  Precision precision = Precision::F64;
  /// Kernel threads for the simulator's chunked amplitude sweeps
  /// (sim/collapse_threaded.h).  0 (the default) resolves the
  /// MBQ_KERNEL_THREADS environment variable ("auto"/unset = the OpenMP
  /// default); >= 1 pins the count process-wide.  Purely a wall-clock
  /// knob: results are bit-identical at every value.  NOTE: the setting
  /// is process-global (the kernels are shared), so the last constructed
  /// Session wins.
  int kernel_threads = 0;
};

struct Shot {
  std::uint64_t x = 0;
  real cost = 0.0;
};

struct SampleResult {
  std::vector<Shot> shots;

  const Shot& best() const;
  real mean_cost() const;
  /// Occurrence count per bitstring, length 2^num_qubits.  Throws Error
  /// for num_qubits outside [1, 24]: beyond 24 the dense histogram would
  /// silently allocate gigabytes — aggregate the shots directly instead.
  std::vector<std::int64_t> counts(int num_qubits) const;
  /// Sparse occurrence counts keyed by observed bitstring.  Memory scales
  /// with the number of DISTINCT outcomes, not 2^n, so there is no
  /// register-width cap — this is what the bench::distance toolkit
  /// aggregates on large-n corpus runs where counts() must refuse.
  std::map<std::uint64_t, std::int64_t> counts_map() const;
};

class Session {
 public:
  /// Resolve the backend from the global BackendRegistry by name.
  Session(Workload workload, const std::string& backend_name,
          SessionOptions options = {});
  Session(Workload workload, std::shared_ptr<Backend> backend,
          SessionOptions options = {});
  ~Session();  // out of line: owns an incomplete-type worker pool

  // Deliberately no mutable workload() accessor: the prepare() cache is
  // keyed by angles only, so workload options must not change under a
  // live Session — configure the Workload before constructing.
  const Workload& workload() const noexcept { return workload_; }
  const Backend& backend() const noexcept { return *backend_; }
  std::string backend_name() const { return backend_->name(); }
  Capabilities capabilities() const { return backend_->capabilities(); }

  /// Empty when the backend can run this workload at these angles.
  std::string unsupported_reason(const qaoa::Angles& a) const;
  /// Throws Error with the backend's reason when unsupported.
  void require_supported(const qaoa::Angles& a) const;

  /// <C> at the given angles (exact on every built-in backend).
  real expectation(const qaoa::Angles& a);

  /// <C> at every given angle point, prepared AND evaluated concurrently
  /// on common/parallel.  Values are bit-identical to calling
  /// expectation() on each point in order, at every thread count.
  std::vector<real> expectation_batch(std::span<const qaoa::Angles> points);

  /// <C> at the given angles as a future; the support check and the
  /// prepare-cache update run on the calling thread (the cache is not
  /// thread-safe), only the stateless backend evaluation is offloaded.
  /// The Session must outlive the returned future.
  std::future<real> expectation_async(const qaoa::Angles& a);

  /// `shots` measurements of the problem register, batched in parallel,
  /// reproducible from the session seed regardless of thread count.
  SampleResult sample(const qaoa::Angles& a, int shots);

  /// One SampleResult per angle point; all (point, shot) pairs run
  /// concurrently.  Result i is bit-identical to the i-th of consecutive
  /// serial sample(points[i], shots) calls, at every thread count.
  std::vector<SampleResult> sample_batch(std::span<const qaoa::Angles> points,
                                         int shots);

  /// Highest-cost shot of a fresh batch.
  Shot best_of(const qaoa::Angles& a, int shots);

  /// The variational objective: flat angle vector -> expectation.  The
  /// closure references this Session (and its cache); the Session must
  /// outlive it.
  opt::Objective objective();

  /// Batch-aware objective over expectation_batch, for the optimizers'
  /// batch paths (opt::nelder_mead/grid_search/spsa BatchObjective
  /// overloads).  Same lifetime rule as objective().
  opt::BatchObjective batch_objective();

  // --- cache introspection ---------------------------------------------
  std::size_t cache_entries() const noexcept { return cache_.size(); }
  std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  std::uint64_t cache_misses() const noexcept { return cache_misses_; }

  // --- sharding introspection ------------------------------------------
  /// Live worker processes backing this session; 0 while unsharded (no
  /// pool spawned yet, sharding not requested, or fallen back).  The
  /// pool spawns lazily on the first sharded call.
  int shard_workers() const noexcept;
  /// The num_processes value in effect (options / MBQ_NUM_PROCESSES).
  int num_processes() const noexcept { return num_processes_; }
  /// The live pool, for diagnostics and fault-injection tests; nullptr
  /// while unsharded.
  const shard::WorkerPool* worker_pool() const noexcept {
    return pool_.get();
  }

  // --- remote transport ------------------------------------------------
  /// True when a daemon endpoint is in effect (options or
  /// MBQ_DAEMON_ENDPOINT): batch/sample calls execute on mbqd.
  bool remote() const noexcept { return !daemon_endpoint_.empty(); }
  const std::string& daemon_endpoint() const noexcept {
    return daemon_endpoint_;
  }

 private:
  /// Expectation evaluations draw from the upper half of the stream-index
  /// space so they can never collide with sample() call streams.
  static constexpr std::uint64_t kExpectationStreamBase = 1ULL << 63;

  /// Cache lookup; on a miss, runs the support check, prepares and
  /// inserts.  Hits skip the check — entries are only inserted after it
  /// passed and the workload is immutable while the Session lives.
  std::shared_ptr<const Prepared> checked_prepared(const qaoa::Angles& a);
  /// Batch variant: cache lookups and insertions stay serial, but the
  /// support checks and prepare() calls of all missing points run
  /// concurrently (backends are stateless).  Errors are rethrown for the
  /// lowest-indexed failing point, matching the serial loop.
  std::vector<std::shared_ptr<const Prepared>> checked_prepared_batch(
      std::span<const qaoa::Angles> points);
  const Prepared* peek_cache(const std::vector<real>& key) const;
  void insert_cache(std::vector<real> key,
                    std::shared_ptr<const Prepared> prepared);

  /// The worker pool when this call (of `items` independent pieces)
  /// should shard, else nullptr (fall back in-process).  Spawns the pool
  /// on first use; a failed spawn or a dead pool disables sharding for
  /// the session's lifetime.
  shard::WorkerPool* shard_pool(std::uint64_t items);

  /// Fill the request fields every daemon/worker call shares (backend
  /// key, seed, workload); the caller sets kind, points and bounds.
  shard::Request base_request() const;
  /// Execute one whole request on the configured daemon, connecting
  /// lazily.  Throws Error when the workload cannot travel or the
  /// daemon is unreachable; a broken transport drops the connection so
  /// the next call can reach a restarted daemon.
  struct RemoteRun {
    std::vector<std::uint64_t> outcomes;  // kSample payload
    std::vector<real> values;             // kExpectation payload
  };
  RemoteRun run_remote(const shard::Request& req);
  SampleResult sample_remote(const qaoa::Angles& a, int shots);
  std::vector<SampleResult> sample_batch_remote(
      std::span<const qaoa::Angles> points, int shots);
  std::vector<real> expectation_batch_remote(
      std::span<const qaoa::Angles> points);

  SampleResult sample_sharded(const qaoa::Angles& a, int shots,
                              std::uint64_t call, shard::WorkerPool& pool);
  std::vector<SampleResult> sample_batch_sharded(
      std::span<const qaoa::Angles> points, int shots, std::uint64_t base_call,
      shard::WorkerPool& pool);
  std::vector<real> expectation_batch_sharded(
      std::span<const qaoa::Angles> points, std::uint64_t base,
      shard::WorkerPool& pool);

  Workload workload_;
  std::shared_ptr<Backend> backend_;
  SessionOptions options_;
  Rng rng_;
  std::uint64_t sample_calls_ = 0;
  std::uint64_t expectation_calls_ = 0;

  /// Built-in registry key the backend was created from.  Empty — and
  /// the session never shards — when the Session was handed a backend
  /// INSTANCE (whose configuration a worker could not reproduce from a
  /// name) or a runtime-registered key (absent from a worker's
  /// registry).
  std::string registry_key_;
  int num_processes_ = 1;  // resolved from options / MBQ_NUM_PROCESSES
  std::unique_ptr<shard::WorkerPool> pool_;
  bool shard_disabled_ = false;
  std::string daemon_endpoint_;  // options / MBQ_DAEMON_ENDPOINT
  std::unique_ptr<serve::DaemonClient> daemon_;  // lazy, remote() only

  struct CacheEntry {
    std::vector<real> key;  // exact flattened angles
    std::shared_ptr<const Prepared> prepared;
    std::uint64_t last_used = 0;
  };
  std::vector<CacheEntry> cache_;
  std::uint64_t cache_clock_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

}  // namespace mbq::api
