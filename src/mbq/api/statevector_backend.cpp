#include "mbq/api/statevector_backend.h"

#include "mbq/api/prepared.h"

namespace mbq::api {

Capabilities StatevectorBackend::capabilities() const {
  Capabilities caps;
  caps.summary =
      "dense gate-model simulation; the exact reference for every ansatz";
  caps.max_qubits = 24;  // 2^24 amplitudes + cost table stay RAM-friendly
  return caps;
}

std::shared_ptr<const Prepared> StatevectorBackend::prepare(
    const Workload& w, const qaoa::Angles& a) const {
  const Statevector sv = w.reference_state(a);
  const auto table = w.cost_table();
  auto prep = std::make_shared<PreparedDistribution>();
  prep->expectation = sv.expectation_diagonal(*table);
  prep->cumulative.resize(sv.dim());
  real acc = 0.0;
  for (std::uint64_t x = 0; x < sv.dim(); ++x) {
    acc += std::norm(sv.amplitudes()[x]);
    prep->cumulative[x] = acc;
  }
  return prep;
}

real StatevectorBackend::expectation(const Workload& w, const qaoa::Angles& a,
                                     Rng& rng, const Prepared* prep) const {
  (void)rng;  // the dense path is deterministic
  if (prep != nullptr) return distribution_of(prep).expectation;
  return w.reference_state(a).expectation_diagonal(*w.cost_table());
}

std::uint64_t StatevectorBackend::sample_one(const Workload& w,
                                             const qaoa::Angles& a, Rng& rng,
                                             const Prepared* prep) const {
  std::shared_ptr<const Prepared> local;
  if (prep == nullptr) {
    local = prepare(w, a);
    prep = local.get();
  }
  return distribution_of(prep).sample(rng);
}

}  // namespace mbq::api
