#include "mbq/api/workload.h"

#include "mbq/api/ansatz_registry.h"
#include "mbq/common/error.h"
#include "mbq/core/mis.h"
#include "mbq/qaoa/mixers.h"

namespace mbq::api {

Workload Workload::qaoa(qaoa::CostHamiltonian cost) {
  WorkloadSpec spec;
  spec.cost = std::move(cost);
  return Workload(std::move(spec));
}

Workload Workload::maxcut(const Graph& g) {
  return Workload::qaoa(qaoa::CostHamiltonian::maxcut(g));
}

Workload Workload::maxcut_weighted(const Graph& g,
                                   const std::vector<real>& weights) {
  return Workload::qaoa(qaoa::CostHamiltonian::maxcut_weighted(g, weights));
}

Workload Workload::pubo(int n, const std::vector<qaoa::PuboTerm>& terms,
                        real constant) {
  return Workload::qaoa(qaoa::CostHamiltonian::pubo(n, terms, constant));
}

Workload Workload::mis(const Graph& g) {
  WorkloadSpec spec;
  spec.kind = AnsatzKind::MisConstrained;
  spec.cost = qaoa::CostHamiltonian::independent_set_size(g.num_vertices());
  spec.graph = std::make_shared<const Graph>(g);
  return Workload(std::move(spec));
}

Workload Workload::mis_weighted(const Graph& g, std::vector<real> weights) {
  MBQ_REQUIRE(static_cast<int>(weights.size()) == g.num_vertices(),
              "MIS weight count " << weights.size() << " != vertex count "
                                  << g.num_vertices());
  WorkloadSpec spec;
  spec.kind = AnsatzKind::MisConstrained;
  spec.cost = qaoa::CostHamiltonian::weighted_independent_set(weights);
  spec.graph = std::make_shared<const Graph>(g);
  spec.vertex_weights = std::move(weights);
  return Workload(std::move(spec));
}

Workload Workload::parameterized(qaoa::CostHamiltonian cost,
                                 qaoa::ParamCircuit circuit) {
  MBQ_REQUIRE(circuit.num_qubits() == cost.num_qubits(),
              "declarative circuit acts on " << circuit.num_qubits()
                                             << " qubits, cost on "
                                             << cost.num_qubits());
  WorkloadSpec spec;
  spec.kind = AnsatzKind::ParamCircuit;
  spec.cost = std::move(cost);
  spec.circuit =
      std::make_shared<const qaoa::ParamCircuit>(std::move(circuit));
  return Workload(std::move(spec));
}

Workload Workload::custom(qaoa::CostHamiltonian cost, CircuitBuilder builder) {
  MBQ_REQUIRE(builder != nullptr, "custom workload needs a circuit builder");
  WorkloadSpec spec;
  spec.kind = AnsatzKind::CustomCircuit;
  spec.cost = std::move(cost);
  Workload w(std::move(spec));
  w.circuit_ = std::move(builder);
  return w;
}

Workload Workload::registered(std::string name, qaoa::CostHamiltonian cost,
                              std::vector<int> ints, std::vector<real> reals) {
  WorkloadSpec spec;
  spec.kind = AnsatzKind::Registered;
  spec.cost = std::move(cost);
  spec.registered_name = std::move(name);
  spec.registered_ints = std::move(ints);
  spec.registered_reals = std::move(reals);
  spec.validate();  // resolves the name and runs the kind's own checks
  return Workload(std::move(spec));
}

Workload Workload::from_spec(WorkloadSpec spec) {
  MBQ_REQUIRE(spec.kind != AnsatzKind::CustomCircuit,
              "a custom-circuit workload cannot be rebuilt from a spec: the "
              "CircuitBuilder closure is not part of it — use "
              "Workload::custom");
  spec.validate();
  return Workload(std::move(spec));
}

const Graph& Workload::mis_graph() const {
  MBQ_REQUIRE(spec_.kind == AnsatzKind::MisConstrained,
              "workload has no MIS graph (ansatz is "
                  << ansatz_kind_name(spec_.kind)
                  << "; only the constraint-preserving MIS ansatz carries "
                     "one; known kinds: " << ansatz_kind_listing() << ")");
  return *spec_.graph;
}

const std::vector<real>& Workload::mis_weights() const {
  MBQ_REQUIRE(spec_.kind == AnsatzKind::MisConstrained,
              "workload has no MIS vertex weights (ansatz is "
                  << ansatz_kind_name(spec_.kind)
                  << "; known kinds: " << ansatz_kind_listing() << ")");
  return spec_.vertex_weights;
}

const qaoa::ParamCircuit& Workload::param_circuit() const {
  MBQ_REQUIRE(spec_.kind == AnsatzKind::ParamCircuit,
              "workload has no declarative circuit (ansatz is "
                  << ansatz_kind_name(spec_.kind)
                  << "; known kinds: " << ansatz_kind_listing() << ")");
  return *spec_.circuit;
}

Workload& Workload::with_linear_style(core::LinearTermStyle style) {
  spec_.linear_style = style;
  table_.reset();  // options do not affect the table, but stay conservative
  lowered_.reset();
  return *this;
}

Workload& Workload::with_max_wire_degree(int degree) {
  MBQ_REQUIRE(degree == 0 || degree >= 3,
              "max_wire_degree must be 0 (unlimited) or >= 3, got " << degree);
  spec_.max_wire_degree = degree;
  lowered_.reset();
  return *this;
}

Workload& Workload::with_entangler_noise(real probability) {
  MBQ_REQUIRE(probability >= 0.0 && probability <= 1.0,
              "entangler noise probability out of range: " << probability);
  spec_.entangler_noise = probability;
  lowered_.reset();
  return *this;
}

Workload& Workload::with_precision(Precision p) {
  const auto v = static_cast<std::uint8_t>(p);
  MBQ_REQUIRE(v <= static_cast<std::uint8_t>(Precision::F32),
              "invalid precision " << int{v});
  spec_.precision = p;
  lowered_.reset();
  return *this;
}

Workload& Workload::with_spec_compile(
    const speccomp::SpecCompileOptions& options) {
  spec_opt_ = options;
  lowered_.reset();
  return *this;
}

const speccomp::CompiledSpec& Workload::lowered() const {
  if (!lowered_)
    lowered_ = std::make_shared<const speccomp::CompiledSpec>(
        speccomp::compile_spec(spec_, spec_opt_));
  return *lowered_;
}

const qaoa::ParamCircuit& Workload::registered_circuit() const {
  if (!registered_circuit_) {
    // Built from the RAW spec (the passes never touch the registered
    // payload), through the registry's build hook.
    const AnsatzKindHooks hooks =
        AnsatzKindRegistry::instance().hooks(spec_.registered_name);
    qaoa::ParamCircuit built = hooks.build(spec_);
    MBQ_REQUIRE(built.num_qubits() == num_qubits(),
                "registered ansatz '" << spec_.registered_name
                                      << "' built a circuit on "
                                      << built.num_qubits()
                                      << " qubits, cost acts on "
                                      << num_qubits());
    registered_circuit_ =
        std::make_shared<const qaoa::ParamCircuit>(std::move(built));
  }
  return *registered_circuit_;
}

core::CompileOptions Workload::compile_options(bool final_corrections) const {
  core::CompileOptions o;
  o.linear_style = spec_.linear_style;
  o.final_corrections = final_corrections;
  o.max_wire_degree = spec_.max_wire_degree;
  o.hints = lowered().hints;
  return o;
}

std::shared_ptr<const std::vector<real>> Workload::cost_table() const {
  if (!table_)
    table_ = std::make_shared<const std::vector<real>>(spec_.cost.cost_table());
  return table_;
}

Statevector Workload::reference_state(const qaoa::Angles& a) const {
  // Lower from the optimized spec; the default pass set guarantees the
  // result is bit-identical to lowering the raw one.
  const WorkloadSpec& low = lowered().spec;
  switch (low.kind) {
    case AnsatzKind::QaoaDiagonal: {
      const auto table = cost_table();
      return qaoa::qaoa_state(low.cost, a, table.get());
    }
    case AnsatzKind::MisConstrained: {
      Statevector sv(num_qubits());  // feasible start |0...0>
      const Circuit c =
          low.vertex_weights.empty()
              ? qaoa::mis_qaoa_circuit(*low.graph, a)
              : qaoa::mis_qaoa_circuit_weighted(*low.graph,
                                                low.vertex_weights, a);
      c.apply_to(sv);
      return sv;
    }
    case AnsatzKind::ParamCircuit: {
      Statevector sv = Statevector::all_plus(num_qubits());
      low.circuit->instantiate(a).apply_to(sv);
      return sv;
    }
    case AnsatzKind::Registered: {
      Statevector sv = Statevector::all_plus(num_qubits());
      registered_circuit().instantiate(a).apply_to(sv);
      return sv;
    }
    case AnsatzKind::CustomCircuit: {
      Statevector sv = Statevector::all_plus(num_qubits());
      circuit_(a).apply_to(sv);
      return sv;
    }
  }
  throw InternalError("unreachable ansatz kind");
}

core::CompiledPattern Workload::compile_pattern(const qaoa::Angles& a,
                                                bool final_corrections) const {
  const core::CompileOptions options = compile_options(final_corrections);
  const WorkloadSpec& low = lowered().spec;
  switch (low.kind) {
    case AnsatzKind::QaoaDiagonal:
      return core::compile_qaoa(low.cost, a, options);
    case AnsatzKind::MisConstrained:
      return low.vertex_weights.empty()
                 ? core::compile_mis_qaoa(*low.graph, a, options)
                 : core::compile_mis_qaoa_weighted(
                       *low.graph, low.vertex_weights, a, options);
    case AnsatzKind::ParamCircuit:
      return core::compile_circuit_tailored(low.circuit->instantiate(a),
                                            options);
    case AnsatzKind::Registered:
      return core::compile_circuit_tailored(
          registered_circuit().instantiate(a), options);
    case AnsatzKind::CustomCircuit:
      return core::compile_circuit_tailored(circuit_(a), options);
  }
  throw InternalError("unreachable ansatz kind");
}

}  // namespace mbq::api
