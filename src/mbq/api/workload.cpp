#include "mbq/api/workload.h"

#include "mbq/common/error.h"
#include "mbq/core/mis.h"
#include "mbq/qaoa/mixers.h"

namespace mbq::api {

std::string ansatz_kind_name(AnsatzKind k) {
  switch (k) {
    case AnsatzKind::QaoaDiagonal: return "qaoa";
    case AnsatzKind::MisConstrained: return "mis";
    case AnsatzKind::CustomCircuit: return "custom";
  }
  return "?";
}

Workload Workload::qaoa(qaoa::CostHamiltonian cost) {
  return Workload(std::move(cost));
}

Workload Workload::maxcut(const Graph& g) {
  return Workload(qaoa::CostHamiltonian::maxcut(g));
}

Workload Workload::mis(const Graph& g) {
  Workload w(qaoa::CostHamiltonian::independent_set_size(g.num_vertices()));
  w.ansatz_ = AnsatzKind::MisConstrained;
  w.mis_graph_ = g;
  return w;
}

Workload Workload::custom(qaoa::CostHamiltonian cost, CircuitBuilder builder) {
  MBQ_REQUIRE(builder != nullptr, "custom workload needs a circuit builder");
  Workload w(std::move(cost));
  w.ansatz_ = AnsatzKind::CustomCircuit;
  w.circuit_ = std::move(builder);
  return w;
}

const Graph& Workload::mis_graph() const {
  MBQ_REQUIRE(ansatz_ == AnsatzKind::MisConstrained,
              "workload has no MIS graph (ansatz is "
                  << ansatz_kind_name(ansatz_) << ")");
  return mis_graph_;
}

Workload& Workload::with_linear_style(core::LinearTermStyle style) {
  linear_style_ = style;
  table_.reset();  // options do not affect the table, but stay conservative
  return *this;
}

Workload& Workload::with_max_wire_degree(int degree) {
  MBQ_REQUIRE(degree == 0 || degree >= 3,
              "max_wire_degree must be 0 (unlimited) or >= 3, got " << degree);
  max_wire_degree_ = degree;
  return *this;
}

core::CompileOptions Workload::compile_options(bool final_corrections) const {
  core::CompileOptions o;
  o.linear_style = linear_style_;
  o.final_corrections = final_corrections;
  o.max_wire_degree = max_wire_degree_;
  return o;
}

std::shared_ptr<const std::vector<real>> Workload::cost_table() const {
  if (!table_)
    table_ = std::make_shared<const std::vector<real>>(cost_.cost_table());
  return table_;
}

Statevector Workload::reference_state(const qaoa::Angles& a) const {
  switch (ansatz_) {
    case AnsatzKind::QaoaDiagonal: {
      const auto table = cost_table();
      return qaoa::qaoa_state(cost_, a, table.get());
    }
    case AnsatzKind::MisConstrained: {
      Statevector sv(num_qubits());  // feasible start |0...0>
      qaoa::mis_qaoa_circuit(mis_graph_, a).apply_to(sv);
      return sv;
    }
    case AnsatzKind::CustomCircuit: {
      Statevector sv = Statevector::all_plus(num_qubits());
      circuit_(a).apply_to(sv);
      return sv;
    }
  }
  throw InternalError("unreachable ansatz kind");
}

core::CompiledPattern Workload::compile_pattern(const qaoa::Angles& a,
                                                bool final_corrections) const {
  const core::CompileOptions options = compile_options(final_corrections);
  switch (ansatz_) {
    case AnsatzKind::QaoaDiagonal:
      return core::compile_qaoa(cost_, a, options);
    case AnsatzKind::MisConstrained:
      return core::compile_mis_qaoa(mis_graph_, a, options);
    case AnsatzKind::CustomCircuit:
      return core::compile_circuit_tailored(circuit_(a), options);
  }
  throw InternalError("unreachable ansatz kind");
}

}  // namespace mbq::api
