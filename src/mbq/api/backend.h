#pragma once
// The unified execution-backend interface.
//
// Every way this library can evaluate a QAOA workload — fast diagonal
// statevector, full adaptive MBQC protocol, stabilizer tableau at
// Clifford angles, ZX tensor contraction — implements this one
// interface, so benches, examples and the variational outer loop are
// written once against Backend and select implementations by registry
// name (see registry.h).  The paper's central equivalence claim then
// reads: all backends agree on expectation() for every workload they
// support.
//
// Backends are STATELESS (all methods const): per-(workload, angles)
// artifacts that are worth reusing across calls — compiled measurement
// patterns, evaluated amplitude tables — are returned by prepare() as an
// opaque Prepared and threaded back in by the caller.  Session (see
// session.h) owns the cache and the batching; backends stay pure
// adapters.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mbq/api/workload.h"
#include "mbq/common/rng.h"

namespace mbq::api {

/// What a backend can and cannot do, for dispatch and documentation.
struct Capabilities {
  /// One-line human description.
  std::string summary;
  /// Largest problem register the backend can handle.
  int max_qubits = 28;
  /// expectation() is exact (deterministic protocol / full contraction),
  /// not a shot-based estimate.
  bool exact_expectation = true;
  bool supports_sampling = true;
  /// Only angles compiling to pi/2-multiple measurement patterns run.
  bool clifford_angles_only = false;
  bool supports_mis_ansatz = true;
  /// Arbitrary angle-parameterized circuits — covers both the
  /// declarative ParamCircuit ansatz and the CustomCircuit escape hatch.
  bool supports_custom_ansatz = true;
  /// Largest Ising-term order |S| the backend can evaluate (0 =
  /// unlimited).  Higher-order PUBO costs expand into |S| > 2 terms;
  /// a bounded backend rejects them and the router passes it over.
  int max_term_order = 0;
  /// Whether the backend can execute workloads with entangler_noise > 0
  /// (the mbqc runner's depolarizing channel).  Ideal backends
  /// (statevector, clifford, zx) are noiseless by construction and
  /// reject noisy workloads, so the router sends them to a
  /// measurement-based adapter.
  bool supports_noise = false;
  /// Whether the backend honors WorkloadSpec::precision == F32 (the
  /// simulator's float32 statevector storage).  Backends that compute in
  /// f64 regardless — exact contraction, tableau, the dense reference
  /// statevector — must reject f32 workloads rather than silently run
  /// them at the wrong precision, so the router sends those to an
  /// f32-capable measurement-based adapter.
  bool supports_f32_storage = false;
};

/// Opaque reusable per-(workload, angles) compilation artifact.
class Prepared {
 public:
  virtual ~Prepared() = default;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable identifier; also the default registry key.
  virtual std::string name() const = 0;
  virtual Capabilities capabilities() const = 0;

  /// Empty string when the backend can run (workload, angles); otherwise
  /// a human-readable reason it cannot.  The default checks the generic
  /// Capabilities constraints; backends refine it.  `prep`, when
  /// available, lets a backend whose check needs the compiled artifact
  /// (e.g. clifford's angle test) reuse it instead of recompiling.
  virtual std::string unsupported_reason(const Workload& w,
                                         const qaoa::Angles& a,
                                         const Prepared* prep = nullptr) const;

  /// Compile whatever is reusable across expectation/sample calls at
  /// fixed angles.  May return null (nothing worth caching).
  virtual std::shared_ptr<const Prepared> prepare(const Workload& w,
                                                  const qaoa::Angles& a) const;

  /// <C> at the given angles.  `prep`, when non-null, must come from
  /// prepare() on the same (workload, angles).
  virtual real expectation(const Workload& w, const qaoa::Angles& a, Rng& rng,
                           const Prepared* prep = nullptr) const = 0;

  /// One measurement of the problem register.
  virtual std::uint64_t sample_one(const Workload& w, const qaoa::Angles& a,
                                   Rng& rng,
                                   const Prepared* prep = nullptr) const = 0;

  /// `shots` measurements; the default loops sample_one on one rng (the
  /// thread-count-independent batched path lives in Session::sample).
  virtual std::vector<std::uint64_t> sample(const Workload& w,
                                            const qaoa::Angles& a, int shots,
                                            Rng& rng,
                                            const Prepared* prep = nullptr)
      const;
};

}  // namespace mbq::api
