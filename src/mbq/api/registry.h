#pragma once
// String-keyed backend factory.
//
// The registry decouples call sites from concrete adapters: benches,
// examples and future network-facing frontends select an execution path
// by name ("statevector", "mbqc", "mbqc-classical", "clifford", "zx")
// and new backends plug in with one add() call — the one-adapter-each
// extension point the ROADMAP's multi-backend scaling items build on.
//
// The built-in adapters register themselves the first time instance() is
// called; user backends may be added at any point after that.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mbq/api/backend.h"

namespace mbq::api {

class BackendRegistry {
 public:
  using Factory = std::function<std::shared_ptr<Backend>()>;

  /// The process-wide registry, with built-ins pre-registered.
  static BackendRegistry& instance();

  /// Register a factory under `name`; throws on duplicates.
  void add(const std::string& name, Factory factory);

  bool contains(const std::string& name) const;

  /// True for the adapters the library registers itself — the set every
  /// freshly exec'd process (in particular mbq_worker) is guaranteed to
  /// have.  Sessions only shard backends passing this test: a child
  /// cannot rebuild a backend registered at runtime in the parent only.
  bool is_builtin(const std::string& name) const;

  /// Instantiate by name; throws Error listing the known names when the
  /// key is unknown.
  std::shared_ptr<Backend> create(const std::string& name) const;

  /// Sorted registered names.
  std::vector<std::string> names() const;

 private:
  BackendRegistry();

  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
  std::vector<std::string> builtin_names_;  // fixed after construction
};

}  // namespace mbq::api
