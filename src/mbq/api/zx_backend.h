#pragma once
// ZX tensor-contraction adapter ("zx").
//
// The small-instance oracle: the compiled pattern's all-outcomes-zero
// branch becomes a ZX-diagram (preparations are phase-0 Z spiders, CZ
// entanglers are Hadamard edges, measurements are effect spiders) whose
// full tensor contraction yields the unnormalized output state; pattern
// determinism makes that state equal to the QAOA state after
// normalization.  An entirely independent semantics — no statevector, no
// tableau — which is what makes it valuable as a cross-check.

#include "mbq/api/backend.h"

namespace mbq::api {

class ZxTensorBackend final : public Backend {
 public:
  std::string name() const override { return "zx"; }
  Capabilities capabilities() const override;

  std::shared_ptr<const Prepared> prepare(const Workload& w,
                                          const qaoa::Angles& a) const override;
  real expectation(const Workload& w, const qaoa::Angles& a, Rng& rng,
                   const Prepared* prep) const override;
  std::uint64_t sample_one(const Workload& w, const qaoa::Angles& a, Rng& rng,
                           const Prepared* prep) const override;
};

}  // namespace mbq::api
