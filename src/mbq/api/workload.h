#pragma once
// The unit of work every execution backend accepts.
//
// A Workload bundles a cost Hamiltonian with the ansatz that prepares the
// trial state and the options controlling its measurement-based
// compilation.  The ansatz semantics live HERE, not in the backends: a
// workload knows both its gate-model reference state (what the
// statevector backend runs) and its measurement-pattern compilation (what
// the MBQC/stabilizer/ZX backends run), so every backend executes the
// same mathematical object and the paper's equivalence claims (Sec. III,
// Eq. 12) become assertions over interchangeable adapters.
//
// Internally a Workload is a declarative WorkloadSpec (workload_spec.h) —
// pure, serializable data — plus at most one opaque escape hatch.  The
// ansatz kinds:
//
//   QaoaDiagonal   — standard QAOA_p: phase layers for the cost function
//                    alternating with transverse-field mixers (Sec. III);
//                    covers MaxCut, QUBO, and arbitrary-order PUBO costs
//                    (the Sec. II-C higher-order extension);
//   MisConstrained — the constraint-preserving MIS ansatz over a graph
//                    (Sec. IV), starting from the feasible state |0...0>;
//                    optionally vertex-weighted (c(x) = sum w_v x_v);
//   ParamCircuit   — a DECLARATIVE angle-parameterized circuit acting on
//                    |+...+> (XY-mixer colorings of Sec. V, HEA, ...),
//                    held as a qaoa::ParamCircuit gate list: value
//                    semantics, serializable, shardable;
//   Registered     — an ansatz kind resolved by name through
//                    api::AnsatzKindRegistry (ansatz_registry.h): the
//                    spec carries the name and a generic int/real
//                    payload; the registry's hooks build the declarative
//                    circuit.  Pure data — serializes, fingerprints, and
//                    (for library-registered names) shards;
//   CustomCircuit  — the std::function escape hatch: an arbitrary
//                    angle-parameterized builder acting on |+...+>.  The
//                    closure cannot cross a process boundary, so custom
//                    workloads are the ONLY kind that cannot shard.
//
// Lowering runs through the spec compiler (speccomp/speccomp.h):
// lowered() memoizes the optimized spec + scheduling hints the backends
// consume, while spec() stays the raw description — fingerprints, the
// prepare caches, and every wire format key on the PRE-optimization
// bytes, so optimization is a per-host lowering detail.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mbq/api/workload_spec.h"
#include "mbq/circuit/circuit.h"
#include "mbq/speccomp/speccomp.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/graph.h"
#include "mbq/qaoa/hamiltonian.h"
#include "mbq/qaoa/param_circuit.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/sim/statevector.h"

namespace mbq::api {

/// Angle-parameterized circuit on |+...+> for AnsatzKind::CustomCircuit.
using CircuitBuilder = std::function<Circuit(const qaoa::Angles&)>;

class Workload {
 public:
  /// Standard QAOA over an arbitrary Ising cost function (any term order).
  static Workload qaoa(qaoa::CostHamiltonian cost);
  /// QAOA for MaxCut on a graph.
  static Workload maxcut(const Graph& g);
  /// QAOA for weighted MaxCut; weights are indexed like g.edges().
  static Workload maxcut_weighted(const Graph& g,
                                  const std::vector<real>& weights);
  /// QAOA for a higher-order PUBO over 0/1 variables (see
  /// qaoa::CostHamiltonian::pubo).
  static Workload pubo(int n, const std::vector<qaoa::PuboTerm>& terms,
                       real constant = 0.0);
  /// Constraint-preserving MIS ansatz (Sec. IV); cost is the set size.
  static Workload mis(const Graph& g);
  /// Weighted MIS: cost is sum_v weights[v] x_v and the phase layer
  /// rotates vertex v by weights[v] * gamma; the mixer still preserves
  /// independence.  weights must have one entry per vertex.
  static Workload mis_weighted(const Graph& g, std::vector<real> weights);
  /// Declarative parameterized-circuit ansatz (convention: acts on
  /// |+...+>).  Serializable, so it shards across worker processes.
  static Workload parameterized(qaoa::CostHamiltonian cost,
                                qaoa::ParamCircuit circuit);
  /// Custom ansatz circuit (convention: acts on |+...+>).  The explicit
  /// escape hatch: the closure is opaque, so the workload cannot be
  /// serialized or sharded — prefer parameterized() when the ansatz can
  /// be written as a gate list.
  static Workload custom(qaoa::CostHamiltonian cost, CircuitBuilder builder);
  /// Ansatz kind registered by name in api::AnsatzKindRegistry; the
  /// int/real payload's meaning is defined by the kind's hooks (e.g.
  /// "hea-line" reads ints = {layers}).  Validates eagerly, including
  /// the kind's own payload validation.
  static Workload registered(std::string name, qaoa::CostHamiltonian cost,
                             std::vector<int> ints = {},
                             std::vector<real> reals = {});
  /// Rebuild from a declarative spec (validated; throws on inconsistent
  /// specs, and on CustomCircuit kinds — the closure cannot travel).
  static Workload from_spec(WorkloadSpec spec);

  /// The declarative description (always present; for CustomCircuit it
  /// describes everything except the closure itself).
  const WorkloadSpec& spec() const noexcept { return spec_; }

  const qaoa::CostHamiltonian& cost() const noexcept { return spec_.cost; }
  AnsatzKind ansatz() const noexcept { return spec_.kind; }
  int num_qubits() const noexcept { return spec_.cost.num_qubits(); }
  /// Graph of the MIS ansatz; throws for other kinds.
  const Graph& mis_graph() const;
  /// Per-vertex weights of the MIS ansatz (empty = unweighted); throws
  /// for other kinds.
  const std::vector<real>& mis_weights() const;
  /// Declarative circuit of the ParamCircuit ansatz; throws otherwise.
  const qaoa::ParamCircuit& param_circuit() const;
  /// True only for the CustomCircuit escape hatch.
  bool has_custom_builder() const noexcept { return circuit_ != nullptr; }

  // --- chainable compile / execution options ---------------------------
  Workload& with_linear_style(core::LinearTermStyle style);
  Workload& with_max_wire_degree(int degree);
  /// Depolarizing probability after every entangling command of the
  /// measurement-based execution (mbqc/runner.h's entangler_noise);
  /// must be in [0, 1].  Noise draws are part of the per-shot rng
  /// stream, so noisy results stay bit-identical at every thread and
  /// process count; only noise-capable backends (mbqc, mbqc-classical)
  /// accept the workload.
  Workload& with_entangler_noise(real probability);
  /// Statevector storage precision of the measurement-based execution
  /// (default Precision::F64).  F32 halves the amplitude footprint —
  /// roughly one extra qubit of reach at a fixed memory budget — and is
  /// deterministic within the precision (same seed -> same stream at
  /// every ISA, thread and process count), but f32 streams are NOT
  /// bit-comparable to f64's.  Routes to f32-capable backends only
  /// (Capabilities::supports_f32_storage) and travels with the spec, so
  /// sharded/served execution uses the same storage as local.
  Workload& with_precision(Precision p);
  core::LinearTermStyle linear_style() const noexcept {
    return spec_.linear_style;
  }
  int max_wire_degree() const noexcept { return spec_.max_wire_degree; }
  real entangler_noise() const noexcept { return spec_.entangler_noise; }
  Precision precision() const noexcept { return spec_.precision; }

  core::CompileOptions compile_options(bool final_corrections) const;

  /// The spec-compiler output this workload lowers from (memoized,
  /// shared across copies).  reference_state/compile_pattern consume
  /// lowered().spec and lowered().hints; spec(), the fingerprints, and
  /// the shard/serve wire formats always use the raw spec, so equal raw
  /// specs stay equal on the wire however each host optimizes.
  const speccomp::CompiledSpec& lowered() const;

  /// Override the spec-compiler pass set for this workload (default:
  /// SpecCompileOptions::from_env(), i.e. MBQ_SPEC_OPT or the standard
  /// bit-neutral set).  Chainable; resets the memoized lowering.
  Workload& with_spec_compile(const speccomp::SpecCompileOptions& options);

  /// Memoized full cost table c(x), x in [0, 2^n).  Shared across copies
  /// of this workload; compute it once before handing the workload to
  /// parallel workers.
  std::shared_ptr<const std::vector<real>> cost_table() const;

  /// Gate-model reference state at the given angles (each ansatz kind
  /// fixes its own initial state; see the header comment).
  Statevector reference_state(const qaoa::Angles& a) const;

  /// Measurement-pattern compilation of the same ansatz.  With
  /// final_corrections the pattern is deterministic and its output state
  /// equals reference_state() on every branch; without, the byproduct
  /// frames are exported for classical post-processing.
  core::CompiledPattern compile_pattern(const qaoa::Angles& a,
                                        bool final_corrections) const;

 private:
  explicit Workload(WorkloadSpec spec) : spec_(std::move(spec)) {}

  /// Built circuit of a Registered ansatz (memoized via the registry's
  /// build hook).
  const qaoa::ParamCircuit& registered_circuit() const;

  WorkloadSpec spec_;
  CircuitBuilder circuit_;  // CustomCircuit escape hatch only
  speccomp::SpecCompileOptions spec_opt_ =
      speccomp::SpecCompileOptions::from_env();
  // Memo for cost_table(); shared so copies reuse the computed table.
  mutable std::shared_ptr<const std::vector<real>> table_;
  mutable std::shared_ptr<const speccomp::CompiledSpec> lowered_;
  mutable std::shared_ptr<const qaoa::ParamCircuit> registered_circuit_;
};

}  // namespace mbq::api
