#pragma once
// The unit of work every execution backend accepts.
//
// A Workload bundles a cost Hamiltonian with the ansatz that prepares the
// trial state and the options controlling its measurement-based
// compilation.  The ansatz semantics live HERE, not in the backends: a
// workload knows both its gate-model reference state (what the
// statevector backend runs) and its measurement-pattern compilation (what
// the MBQC/stabilizer/ZX backends run), so every backend executes the
// same mathematical object and the paper's equivalence claims (Sec. III,
// Eq. 12) become assertions over interchangeable adapters.
//
// Three ansatz kinds cover the paper:
//   QaoaDiagonal   — standard QAOA_p: phase layers for the cost function
//                    alternating with transverse-field mixers (Sec. III);
//   MisConstrained — the constraint-preserving MIS ansatz over a graph
//                    (Sec. IV), starting from the feasible state |0...0>;
//   CustomCircuit  — an angle-parameterized circuit acting on |+...+>
//                    (e.g. the XY-mixer colorings of Sec. V), compiled
//                    with the tailored circuit translator.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mbq/circuit/circuit.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/graph.h"
#include "mbq/qaoa/hamiltonian.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/sim/statevector.h"

namespace mbq::api {

enum class AnsatzKind : std::uint8_t {
  QaoaDiagonal,
  MisConstrained,
  CustomCircuit,
};

std::string ansatz_kind_name(AnsatzKind k);

/// Angle-parameterized circuit on |+...+> for AnsatzKind::CustomCircuit.
using CircuitBuilder = std::function<Circuit(const qaoa::Angles&)>;

class Workload {
 public:
  /// Standard QAOA over an arbitrary Ising cost function.
  static Workload qaoa(qaoa::CostHamiltonian cost);
  /// QAOA for MaxCut on a graph.
  static Workload maxcut(const Graph& g);
  /// Constraint-preserving MIS ansatz (Sec. IV); cost is the set size.
  static Workload mis(const Graph& g);
  /// Custom ansatz circuit (convention: acts on |+...+>).
  static Workload custom(qaoa::CostHamiltonian cost, CircuitBuilder builder);

  const qaoa::CostHamiltonian& cost() const noexcept { return cost_; }
  AnsatzKind ansatz() const noexcept { return ansatz_; }
  int num_qubits() const noexcept { return cost_.num_qubits(); }
  /// Graph of the MIS ansatz; throws for other kinds.
  const Graph& mis_graph() const;

  // --- chainable compile options --------------------------------------
  Workload& with_linear_style(core::LinearTermStyle style);
  Workload& with_max_wire_degree(int degree);
  core::LinearTermStyle linear_style() const noexcept { return linear_style_; }
  int max_wire_degree() const noexcept { return max_wire_degree_; }

  core::CompileOptions compile_options(bool final_corrections) const;

  /// Memoized full cost table c(x), x in [0, 2^n).  Shared across copies
  /// of this workload; compute it once before handing the workload to
  /// parallel workers.
  std::shared_ptr<const std::vector<real>> cost_table() const;

  /// Gate-model reference state at the given angles (each ansatz kind
  /// fixes its own initial state; see the header comment).
  Statevector reference_state(const qaoa::Angles& a) const;

  /// Measurement-pattern compilation of the same ansatz.  With
  /// final_corrections the pattern is deterministic and its output state
  /// equals reference_state() on every branch; without, the byproduct
  /// frames are exported for classical post-processing.
  core::CompiledPattern compile_pattern(const qaoa::Angles& a,
                                        bool final_corrections) const;

 private:
  explicit Workload(qaoa::CostHamiltonian cost) : cost_(std::move(cost)) {}

  qaoa::CostHamiltonian cost_{0};
  AnsatzKind ansatz_ = AnsatzKind::QaoaDiagonal;
  core::LinearTermStyle linear_style_ = core::LinearTermStyle::Gadget;
  int max_wire_degree_ = 0;
  Graph mis_graph_;
  CircuitBuilder circuit_;
  // Memo for cost_table(); shared so copies reuse the computed table.
  mutable std::shared_ptr<const std::vector<real>> table_;
};

}  // namespace mbq::api
