#pragma once
// The declarative workload IR.
//
// A WorkloadSpec is the value-semantic description of everything a
// Workload is: which ansatz prepares the trial state, the cost
// Hamiltonian it optimizes, the measurement-compilation options, and the
// entangler-noise level of its measurement-based execution.  Every
// built-in ansatz is pure data here — the QAOA-diagonal ansatz is its
// cost function, the (weighted) MIS ansatz is a graph plus per-vertex
// weights, and parameterized circuits (XY mixers, HEA, ...) are
// declarative qaoa::ParamCircuit gate lists instead of std::function
// closures.  Data serializes: encode()/decode() give an exact binary
// round trip over common/serialize.h, which is what lets the shard
// layer ship ANY built-in workload to a worker process and replay it
// bit-identically.  Only the CustomCircuit escape hatch (an arbitrary
// CircuitBuilder closure, held by Workload itself, not the spec) is
// opaque — and it is the only workload shape that cannot shard.
//
// The spec owns heavyweight members behind shared_ptr (the MIS graph,
// the gate list), so copying a Workload — which Session, the shard
// requests and the batch paths all do freely — costs two refcounts, not
// a graph copy.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mbq/common/serialize.h"
#include "mbq/common/types.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/graph.h"
#include "mbq/qaoa/hamiltonian.h"
#include "mbq/qaoa/param_circuit.h"

namespace mbq::api {

enum class AnsatzKind : std::uint8_t {
  QaoaDiagonal,
  MisConstrained,
  CustomCircuit,
  ParamCircuit,
  /// A kind resolved by name through api::AnsatzKindRegistry: the spec
  /// carries the name plus a generic int/real payload, and the registry's
  /// hooks validate the payload and build the declarative circuit.  Pure
  /// data, so it serializes, fingerprints, and (for library-registered
  /// names) shards — unlike the CustomCircuit closure escape hatch.
  Registered,
};

std::string ansatz_kind_name(AnsatzKind k);

struct WorkloadSpec {
  AnsatzKind kind = AnsatzKind::QaoaDiagonal;
  qaoa::CostHamiltonian cost{1};

  /// MisConstrained: the constraint graph (never null for that kind) and
  /// optional per-vertex weights (empty = unweighted, all ones).
  std::shared_ptr<const Graph> graph;
  std::vector<real> vertex_weights;

  /// ParamCircuit: the declarative ansatz (never null for that kind).
  std::shared_ptr<const qaoa::ParamCircuit> circuit;

  /// Registered: the AnsatzKindRegistry key plus the kind's generic
  /// payload (meaning defined by the kind's hooks — e.g. hea-line reads
  /// registered_ints = {layers}).
  std::string registered_name;
  std::vector<int> registered_ints;
  std::vector<real> registered_reals;

  // --- compile / execution options ------------------------------------
  core::LinearTermStyle linear_style = core::LinearTermStyle::Gadget;
  int max_wire_degree = 0;
  /// Depolarizing probability after every entangling command of the
  /// measurement-based execution (mbqc/runner.h); 0 = noiseless.  Ideal
  /// backends (statevector, clifford, zx) reject noisy workloads — see
  /// Capabilities::supports_noise.
  real entangler_noise = 0.0;
  /// Statevector storage precision of the measurement-based execution
  /// (common/types.h).  F32 halves the amplitude footprint — roughly one
  /// extra qubit of reach — and is deterministic within the precision,
  /// but NOT bit-comparable to F64 runs.  Part of the codec, so a
  /// sharded or served f32 workload executes f32 remotely too, and the
  /// fingerprint (= every prepare-cache key) distinguishes precisions.
  /// Only f32-capable backends accept F32 — see
  /// Capabilities::supports_f32_storage.
  Precision precision = Precision::F64;

  /// CustomCircuit specs describe everything EXCEPT the closure, so they
  /// are the one kind that cannot round-trip through encode().
  bool serializable() const noexcept {
    return kind != AnsatzKind::CustomCircuit;
  }

  /// Throws Error (with the first inconsistency) unless the spec is
  /// internally consistent: kind-specific members present, weight/width
  /// counts matching, options in range.  decode() always returns a
  /// validated spec; hand-built specs go through Workload::from_spec,
  /// which calls this.
  void validate() const;
};

/// Stable 64-bit FNV-1a hash of the spec's exact codec bytes.  Two specs
/// fingerprint equal iff they encode equal — so the fingerprint survives
/// a serialize/parse round trip unchanged, distinguishes any two specs
/// the codec distinguishes (different costs, angles aside, noise levels,
/// compile options...), and is stable across processes and runs (FNV-1a
/// over little-endian bytes has no seed and no pointer dependence).
/// Used as the serving daemon's warm prepare-cache key, and handy as a
/// compact workload label in logs and bench output.  Throws Error for
/// CustomCircuit specs (they do not serialize).
std::uint64_t spec_fingerprint(const WorkloadSpec& spec);

/// FNV-1a 64 over raw bytes — the primitive under spec_fingerprint,
/// exposed so other layers can hash wire payloads the same way (the
/// daemon keys (spec, angles) pairs by chaining angle bytes onto the
/// spec fingerprint).
std::uint64_t fnv1a64(std::span<const std::byte> bytes,
                      std::uint64_t seed = 14695981039346656037ULL);

/// Exact binary codec over common/serialize.h.  encode() requires
/// serializable(); decode() never trusts the frame — malformed input
/// throws Error, and the returned spec is validate()d.  decode(encode(s))
/// reproduces s bit-exactly (f64 members travel as IEEE-754 bit
/// patterns), so a workload rebuilt in a worker process executes
/// bit-identically to the parent's.
void encode_spec(ByteWriter& out, const WorkloadSpec& spec);
WorkloadSpec decode_spec(ByteReader& in);

/// Frame-level conveniences for tests and tooling.
std::vector<std::byte> serialize_spec(const WorkloadSpec& spec);
WorkloadSpec parse_spec(std::span<const std::byte> frame);

}  // namespace mbq::api
