#pragma once
// Cost-routing meta-backend ("router", and "router-checked" with
// cross-checking on).
//
// Per (workload, angles) it picks the cheapest capable adapter and
// delegates to it:
//
//   clifford     when the compiled pattern is Clifford — the tableau run
//                is near-free and scales to thousands of pattern qubits;
//   zx           for tiny instances (<= zx_max_qubits), where the full
//                contraction is cheap and doubles as an independent oracle;
//   statevector  for everything the dense reference can hold;
//   mbqc         as the measurement-based fallback.
//
// Candidates are tried in the (cost-ordered) list given in RouterOptions,
// so the policy is both inspectable — route() returns a RouteDecision
// naming the chosen adapter and why each other candidate was passed
// over — and replaceable, including with user backends registered under
// custom names.
//
// Cross-check mode runs a second, independent capable adapter on every
// expectation() and throws Error unless the two agree to
// cross_check_tolerance (the paper's Eq. 12 enforced at runtime, not just
// in the test suite).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mbq/api/backend.h"

namespace mbq::api {

struct RouterOptions {
  /// Candidate registry names, tried in cost order (cheapest first).
  std::vector<std::string> candidates{"clifford", "zx", "statevector",
                                      "mbqc"};
  /// Problem sizes up to this may route to "zx" (the tiny-instance
  /// oracle); larger instances skip it even though it could run.
  int zx_max_qubits = 5;
  /// Evaluate every expectation on a second capable adapter too and
  /// require agreement.
  bool cross_check = false;
  real cross_check_tolerance = 1e-9;
};

/// The routing report: which adapter runs a (workload, angles) pair, why,
/// and why every other candidate was passed over.
struct RouteDecision {
  /// Chosen adapter's registry/backend name; empty when nothing fits.
  std::string backend_name;
  std::string reason;
  /// (candidate name, why it was passed over), in cost order.
  std::vector<std::pair<std::string, std::string>> rejected;
  /// Second adapter used by cross-check mode; empty when off or when no
  /// second capable adapter exists.
  std::string cross_check_backend;
};

class RouterBackend final : public Backend {
 public:
  /// Resolves every candidate from the global BackendRegistry; throws if
  /// one is unknown.
  explicit RouterBackend(RouterOptions options = {});

  std::string name() const override { return "router"; }
  Capabilities capabilities() const override;
  std::string unsupported_reason(const Workload& w, const qaoa::Angles& a,
                                 const Prepared* prep) const override;
  std::shared_ptr<const Prepared> prepare(const Workload& w,
                                          const qaoa::Angles& a) const override;
  real expectation(const Workload& w, const qaoa::Angles& a, Rng& rng,
                   const Prepared* prep) const override;
  std::uint64_t sample_one(const Workload& w, const qaoa::Angles& a, Rng& rng,
                           const Prepared* prep) const override;

  /// The routing report for (w, a) — cheap relative to running, but it
  /// does evaluate candidate support checks (clifford compiles the
  /// pattern to test its angles).
  RouteDecision route(const Workload& w, const qaoa::Angles& a) const;

  const RouterOptions& options() const noexcept { return options_; }

 private:
  RouterOptions options_;
  std::vector<std::shared_ptr<Backend>> backends_;  // parallel to candidates
};

}  // namespace mbq::api
