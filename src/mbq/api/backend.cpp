#include "mbq/api/backend.h"

#include "mbq/common/error.h"

namespace mbq::api {

std::string Backend::unsupported_reason(const Workload& w,
                                        const qaoa::Angles& a,
                                        const Prepared* prep) const {
  (void)a;
  (void)prep;
  const Capabilities caps = capabilities();
  if (w.num_qubits() > caps.max_qubits)
    return name() + " handles at most " + std::to_string(caps.max_qubits) +
           " qubits, workload has " + std::to_string(w.num_qubits());
  if (w.ansatz() == AnsatzKind::MisConstrained && !caps.supports_mis_ansatz)
    return name() + " does not support the MIS ansatz";
  if ((w.ansatz() == AnsatzKind::CustomCircuit ||
       w.ansatz() == AnsatzKind::ParamCircuit ||
       w.ansatz() == AnsatzKind::Registered) &&
      !caps.supports_custom_ansatz)
    return name() + " does not support custom ansatz circuits";
  if (caps.max_term_order > 0 && w.cost().max_order() > caps.max_term_order)
    return name() + " evaluates cost terms up to order " +
           std::to_string(caps.max_term_order) + ", workload has an order-" +
           std::to_string(w.cost().max_order()) + " term";
  if (w.entangler_noise() > 0.0 && !caps.supports_noise)
    return name() +
           " is a noiseless path and cannot execute entangler noise";
  if (w.precision() == Precision::F32 && !caps.supports_f32_storage)
    return name() +
           " computes in f64 and cannot honor f32 statevector storage";
  return {};
}

std::shared_ptr<const Prepared> Backend::prepare(const Workload& w,
                                                 const qaoa::Angles& a) const {
  (void)w;
  (void)a;
  return nullptr;
}

std::vector<std::uint64_t> Backend::sample(const Workload& w,
                                           const qaoa::Angles& a, int shots,
                                           Rng& rng,
                                           const Prepared* prep) const {
  MBQ_REQUIRE(shots >= 1, "need at least one shot, got " << shots);
  std::shared_ptr<const Prepared> local;
  if (prep == nullptr) {
    local = prepare(w, a);
    prep = local.get();
  }
  std::vector<std::uint64_t> out(static_cast<std::size_t>(shots));
  for (auto& x : out) x = sample_one(w, a, rng, prep);
  return out;
}

}  // namespace mbq::api
