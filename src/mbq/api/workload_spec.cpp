#include "mbq/api/workload_spec.h"

#include "mbq/api/ansatz_registry.h"
#include "mbq/common/error.h"

namespace mbq::api {

std::string ansatz_kind_name(AnsatzKind k) {
  switch (k) {
    case AnsatzKind::QaoaDiagonal: return "qaoa";
    case AnsatzKind::MisConstrained: return "mis";
    case AnsatzKind::CustomCircuit: return "custom";
    case AnsatzKind::ParamCircuit: return "param-circuit";
    case AnsatzKind::Registered: return "registered";
  }
  return "?";
}

void WorkloadSpec::validate() const {
  const auto k = static_cast<std::uint8_t>(kind);
  MBQ_REQUIRE(k <= static_cast<std::uint8_t>(AnsatzKind::Registered),
              "invalid ansatz kind " << int{k} << " (known kinds: "
                                     << ansatz_kind_listing() << ")");
  const auto style = static_cast<std::uint8_t>(linear_style);
  MBQ_REQUIRE(
      style <= static_cast<std::uint8_t>(core::LinearTermStyle::FusedIntoMixer),
      "invalid linear-term style " << int{style});
  MBQ_REQUIRE(max_wire_degree == 0 || max_wire_degree >= 3,
              "max_wire_degree must be 0 (unlimited) or >= 3, got "
                  << max_wire_degree);
  MBQ_REQUIRE(entangler_noise >= 0.0 && entangler_noise <= 1.0,
              "entangler noise probability out of range: " << entangler_noise);
  const auto prec = static_cast<std::uint8_t>(precision);
  MBQ_REQUIRE(prec <= static_cast<std::uint8_t>(Precision::F32),
              "invalid precision " << int{prec});

  // Kind-specific members are canonical: present exactly when the kind
  // uses them, so equal workloads have equal (and equal-encoding) specs.
  if (kind == AnsatzKind::MisConstrained) {
    MBQ_REQUIRE(graph != nullptr, "MIS spec needs a constraint graph");
    MBQ_REQUIRE(graph->num_vertices() == cost.num_qubits(),
                "MIS graph has " << graph->num_vertices()
                                 << " vertices, cost acts on "
                                 << cost.num_qubits() << " qubits");
    MBQ_REQUIRE(vertex_weights.empty() ||
                    static_cast<int>(vertex_weights.size()) ==
                        graph->num_vertices(),
                "MIS weight count " << vertex_weights.size()
                                    << " != vertex count "
                                    << graph->num_vertices());
  } else {
    MBQ_REQUIRE(graph == nullptr && vertex_weights.empty(),
                "only MIS specs carry a graph / vertex weights (kind is "
                    << ansatz_kind_name(kind) << ")");
  }
  if (kind == AnsatzKind::ParamCircuit) {
    MBQ_REQUIRE(circuit != nullptr,
                "param-circuit spec needs a declarative circuit");
    MBQ_REQUIRE(circuit->num_qubits() == cost.num_qubits(),
                "declarative circuit acts on " << circuit->num_qubits()
                                               << " qubits, cost on "
                                               << cost.num_qubits());
  } else {
    MBQ_REQUIRE(circuit == nullptr,
                "only param-circuit specs carry a declarative circuit "
                "(kind is " << ansatz_kind_name(kind) << ")");
  }
  if (kind == AnsatzKind::Registered) {
    MBQ_REQUIRE(!registered_name.empty(),
                "registered spec needs an ansatz kind name (known kinds: "
                    << ansatz_kind_listing() << ")");
    // Throws with the registered-name listing when the name is unknown,
    // then runs the kind's own payload validation.
    const AnsatzKindHooks hooks =
        AnsatzKindRegistry::instance().hooks(registered_name);
    if (hooks.validate) hooks.validate(*this);
  } else {
    MBQ_REQUIRE(registered_name.empty() && registered_ints.empty() &&
                    registered_reals.empty(),
                "only registered specs carry a kind name / payload (kind is "
                    << ansatz_kind_name(kind) << ")");
  }
}

namespace {

void encode_cost(ByteWriter& out, const qaoa::CostHamiltonian& c) {
  out.i32(c.num_qubits());
  out.f64(c.constant());
  out.u32(static_cast<std::uint32_t>(c.terms().size()));
  for (const qaoa::IsingTerm& t : c.terms()) {
    out.f64(t.coeff);
    out.i32_vec(t.support);
  }
}

qaoa::CostHamiltonian decode_cost(ByteReader& in) {
  const int n = in.i32();
  const real constant = in.f64();
  qaoa::CostHamiltonian c(n, constant);
  const std::uint32_t terms = in.u32();
  for (std::uint32_t i = 0; i < terms; ++i) {
    const real coeff = in.f64();
    c.add_term(in.i32_vec(), coeff);
  }
  return c;
}

void encode_graph(ByteWriter& out, const Graph& g) {
  out.i32(g.num_vertices());
  out.u32(static_cast<std::uint32_t>(g.edges().size()));
  for (const Edge& e : g.edges()) {
    out.i32(e.u);
    out.i32(e.v);
  }
}

Graph decode_graph(ByteReader& in) {
  const int n = in.i32();
  MBQ_REQUIRE(n >= 0, "malformed spec frame: negative vertex count " << n);
  Graph g(n);
  const std::uint32_t edges = in.u32();
  for (std::uint32_t i = 0; i < edges; ++i) {
    const int u = in.i32();
    const int v = in.i32();
    g.add_edge(u, v);  // rejects out-of-range/self/duplicate edges
  }
  return g;
}

void encode_circuit(ByteWriter& out, const qaoa::ParamCircuit& pc) {
  out.i32(pc.num_qubits());
  out.u32(static_cast<std::uint32_t>(pc.gates().size()));
  for (const qaoa::ParamGate& g : pc.gates()) {
    out.u8(static_cast<std::uint8_t>(g.kind));
    out.i32_vec(g.qubits);
    out.u8(static_cast<std::uint8_t>(g.angle.source));
    out.i32(g.angle.index);
    out.f64(g.angle.scale);
    out.f64(g.angle.offset);
    out.i32(g.ctrl_value);
  }
}

qaoa::ParamCircuit decode_circuit(ByteReader& in) {
  const int n = in.i32();
  qaoa::ParamCircuit pc(n);
  const std::uint32_t gates = in.u32();
  for (std::uint32_t i = 0; i < gates; ++i) {
    qaoa::ParamGate g;
    const std::uint8_t kind = in.u8();
    MBQ_REQUIRE(kind <= static_cast<std::uint8_t>(GateKind::ControlledExpX),
                "malformed spec frame: gate kind " << int{kind});
    g.kind = static_cast<GateKind>(kind);
    g.qubits = in.i32_vec();
    const std::uint8_t source = in.u8();
    MBQ_REQUIRE(
        source <= static_cast<std::uint8_t>(qaoa::Param::Source::Beta),
        "malformed spec frame: param source " << int{source});
    g.angle.source = static_cast<qaoa::Param::Source>(source);
    g.angle.index = in.i32();
    g.angle.scale = in.f64();
    g.angle.offset = in.f64();
    g.ctrl_value = in.i32();
    pc.append(std::move(g));  // re-validates qubits, arity, index
  }
  return pc;
}

}  // namespace

void encode_spec(ByteWriter& out, const WorkloadSpec& spec) {
  MBQ_REQUIRE(spec.serializable(),
              "custom-circuit workloads hold an arbitrary CircuitBuilder "
              "closure that cannot be serialized");
  spec.validate();
  out.u8(static_cast<std::uint8_t>(spec.kind));
  out.u8(static_cast<std::uint8_t>(spec.linear_style));
  out.i32(spec.max_wire_degree);
  out.f64(spec.entangler_noise);
  out.u8(static_cast<std::uint8_t>(spec.precision));
  encode_cost(out, spec.cost);
  switch (spec.kind) {
    case AnsatzKind::QaoaDiagonal:
      break;
    case AnsatzKind::MisConstrained:
      encode_graph(out, *spec.graph);
      out.f64_vec(spec.vertex_weights);
      break;
    case AnsatzKind::ParamCircuit:
      encode_circuit(out, *spec.circuit);
      break;
    case AnsatzKind::Registered:
      out.str(spec.registered_name);
      out.i32_vec(spec.registered_ints);
      out.f64_vec(spec.registered_reals);
      break;
    case AnsatzKind::CustomCircuit:
      break;  // unreachable: guarded above
  }
}

WorkloadSpec decode_spec(ByteReader& in) {
  WorkloadSpec spec;
  const std::uint8_t kind = in.u8();
  MBQ_REQUIRE(kind <= static_cast<std::uint8_t>(AnsatzKind::Registered) &&
                  kind != static_cast<std::uint8_t>(AnsatzKind::CustomCircuit),
              "malformed spec frame: ansatz kind " << int{kind}
                                                   << " (known kinds: "
                                                   << ansatz_kind_listing()
                                                   << ")");
  spec.kind = static_cast<AnsatzKind>(kind);
  const std::uint8_t style = in.u8();
  MBQ_REQUIRE(
      style <= static_cast<std::uint8_t>(core::LinearTermStyle::FusedIntoMixer),
      "malformed spec frame: linear-term style " << int{style});
  spec.linear_style = static_cast<core::LinearTermStyle>(style);
  spec.max_wire_degree = in.i32();
  spec.entangler_noise = in.f64();
  const std::uint8_t prec = in.u8();
  MBQ_REQUIRE(prec <= static_cast<std::uint8_t>(Precision::F32),
              "malformed spec frame: precision " << int{prec});
  spec.precision = static_cast<Precision>(prec);
  spec.cost = decode_cost(in);
  switch (spec.kind) {
    case AnsatzKind::QaoaDiagonal:
      break;
    case AnsatzKind::MisConstrained:
      spec.graph = std::make_shared<const Graph>(decode_graph(in));
      spec.vertex_weights = in.f64_vec();
      break;
    case AnsatzKind::ParamCircuit:
      spec.circuit =
          std::make_shared<const qaoa::ParamCircuit>(decode_circuit(in));
      break;
    case AnsatzKind::Registered:
      spec.registered_name = in.str();
      spec.registered_ints = in.i32_vec();
      spec.registered_reals = in.f64_vec();
      break;
    case AnsatzKind::CustomCircuit:
      break;  // unreachable: guarded above
  }
  spec.validate();
  return spec;
}

std::uint64_t fnv1a64(std::span<const std::byte> bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t spec_fingerprint(const WorkloadSpec& spec) {
  return fnv1a64(serialize_spec(spec));
}

std::vector<std::byte> serialize_spec(const WorkloadSpec& spec) {
  ByteWriter out;
  encode_spec(out, spec);
  return out.take();
}

WorkloadSpec parse_spec(std::span<const std::byte> frame) {
  ByteReader in(frame);
  WorkloadSpec spec = decode_spec(in);
  MBQ_REQUIRE(in.done(), "malformed spec frame: " << in.remaining()
                                                  << " trailing bytes");
  return spec;
}

}  // namespace mbq::api
