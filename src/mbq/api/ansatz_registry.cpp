#include "mbq/api/ansatz_registry.h"

#include <sstream>

#include "mbq/api/workload_spec.h"
#include "mbq/common/error.h"
#include "mbq/graph/graph.h"
#include "mbq/qaoa/hea.h"

namespace mbq::api {

namespace {

/// Built-in registered kind "hea-line": the hardware-efficient brickwork
/// of qaoa/hea.h over a line coupling graph on the cost's qubits.
/// Payload: registered_ints = {layers}; no reals.  Angle layout is
/// hea_param_circuit's (gamma[L*n+q] = Rz, beta[L*n+q] = Rx).  Exists
/// both as a useful ansatz and as the in-tree proof that a registered
/// kind round-trips the codecs and shards to workers.
void hea_line_validate(const WorkloadSpec& spec) {
  MBQ_REQUIRE(spec.registered_ints.size() == 1,
              "hea-line payload must be exactly {layers}, got "
                  << spec.registered_ints.size() << " ints");
  MBQ_REQUIRE(spec.registered_ints[0] >= 1,
              "hea-line needs layers >= 1, got " << spec.registered_ints[0]);
  MBQ_REQUIRE(spec.registered_reals.empty(),
              "hea-line takes no real payload, got "
                  << spec.registered_reals.size() << " reals");
}

qaoa::ParamCircuit hea_line_build(const WorkloadSpec& spec) {
  const int n = spec.cost.num_qubits();
  Graph line(n);
  for (int q = 0; q + 1 < n; ++q) line.add_edge(q, q + 1);
  return qaoa::hea_param_circuit(line, spec.registered_ints[0]);
}

}  // namespace

AnsatzKindRegistry::AnsatzKindRegistry() {
  hooks_["hea-line"] = {hea_line_validate, hea_line_build};
  for (const auto& [name, hooks] : hooks_) builtin_names_.push_back(name);
}

AnsatzKindRegistry& AnsatzKindRegistry::instance() {
  static AnsatzKindRegistry registry;
  return registry;
}

void AnsatzKindRegistry::add(const std::string& name, AnsatzKindHooks hooks) {
  MBQ_REQUIRE(!name.empty(), "ansatz kind name must be non-empty");
  MBQ_REQUIRE(hooks.build != nullptr,
              "ansatz kind '" << name << "' needs a build hook");
  const std::lock_guard<std::mutex> lock(mutex_);
  MBQ_REQUIRE(!hooks_.contains(name),
              "ansatz kind '" << name << "' is already registered");
  hooks_[name] = std::move(hooks);
}

bool AnsatzKindRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hooks_.contains(name);
}

bool AnsatzKindRegistry::is_builtin(const std::string& name) const {
  for (const std::string& b : builtin_names_)
    if (b == name) return true;
  return false;
}

AnsatzKindHooks AnsatzKindRegistry::hooks(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = hooks_.find(name);
  if (it == hooks_.end()) {
    std::ostringstream os;
    os << "unknown registered ansatz kind '" << name << "' (registered:";
    bool first = true;
    for (const auto& [known, hooks] : hooks_) {
      os << (first ? " " : ", ") << known;
      first = false;
    }
    if (first) os << " none";
    os << ")";
    throw Error(os.str());
  }
  return it->second;
}

std::vector<std::string> AnsatzKindRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(hooks_.size());
  for (const auto& [name, hooks] : hooks_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::string ansatz_kind_listing() {
  std::ostringstream os;
  os << "qaoa, mis, custom, param-circuit";
  for (const std::string& name : AnsatzKindRegistry::instance().names())
    os << ", registered:" << name;
  return os.str();
}

}  // namespace mbq::api
