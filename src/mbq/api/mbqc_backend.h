#pragma once
// Measurement-based adapter ("mbqc" / "mbqc-classical").
//
// Compiles the workload into the paper's deterministic adaptive pattern
// (Sec. III) and executes it on the dynamic statevector runner.  Because
// the pattern is deterministic, expectation() needs a single adaptive
// run; sample() re-executes the full protocol per shot, exactly as
// hardware would.  CorrectionMode selects between quantum terminal
// corrections and classical post-processing of the X byproduct parities
// (Z byproducts do not affect computational-basis statistics).

#include "mbq/api/backend.h"
#include "mbq/core/compiler.h"

namespace mbq::api {

class MbqcBackend final : public Backend {
 public:
  explicit MbqcBackend(
      core::CorrectionMode mode = core::CorrectionMode::Quantum)
      : mode_(mode) {}

  core::CorrectionMode mode() const noexcept { return mode_; }

  std::string name() const override;
  Capabilities capabilities() const override;

  std::shared_ptr<const Prepared> prepare(const Workload& w,
                                          const qaoa::Angles& a) const override;
  real expectation(const Workload& w, const qaoa::Angles& a, Rng& rng,
                   const Prepared* prep) const override;
  std::uint64_t sample_one(const Workload& w, const qaoa::Angles& a, Rng& rng,
                           const Prepared* prep) const override;

 private:
  core::CorrectionMode mode_;
};

}  // namespace mbq::api
