#include "mbq/api/zx_backend.h"

#include <cmath>

#include "mbq/api/prepared.h"
#include "mbq/common/error.h"
#include "mbq/zx/from_pattern.h"
#include "mbq/zx/tensor_eval.h"

namespace mbq::api {

Capabilities ZxTensorBackend::capabilities() const {
  Capabilities caps;
  caps.summary =
      "full ZX tensor contraction of the compiled pattern; independent "
      "small-instance oracle";
  // The contraction carries every pattern wire as a tensor leg at some
  // point; beyond ~10 problem qubits the intermediates blow past the
  // evaluator's 2^30-entry guard for typical QAOA patterns.
  caps.max_qubits = 10;
  return caps;
}

std::shared_ptr<const Prepared> ZxTensorBackend::prepare(
    const Workload& w, const qaoa::Angles& a) const {
  // All-zero branch of the deterministic (quantum-corrected) pattern:
  // corrections vanish, and the contracted diagram is the output state up
  // to normalization.
  const core::CompiledPattern cp = w.compile_pattern(a, true);
  const zx::Diagram d = zx::diagram_from_pattern(cp.pattern);
  // evaluate() orders legs 0..k-1 by diagram output == pattern output ==
  // problem qubit, so flat index bit i is already qubit i.
  const Tensor t = zx::evaluate(d);
  MBQ_REQUIRE(t.rank() == w.num_qubits(),
              "contracted pattern has " << t.rank() << " boundary legs, "
                                        << "expected " << w.num_qubits());

  const auto table = w.cost_table();
  auto prep = std::make_shared<PreparedDistribution>();
  prep->cumulative.resize(t.data().size());
  real norm2 = 0.0;
  for (const cplx& amp : t.data()) norm2 += std::norm(amp);
  MBQ_REQUIRE(norm2 > 0.0, "contracted pattern state has zero norm");
  real acc = 0.0;
  for (std::uint64_t x = 0; x < t.data().size(); ++x) {
    const real p = std::norm(t.data()[x]) / norm2;
    prep->expectation += p * (*table)[x];
    acc += p;
    prep->cumulative[x] = acc;
  }
  return prep;
}

real ZxTensorBackend::expectation(const Workload& w, const qaoa::Angles& a,
                                  Rng& rng, const Prepared* prep) const {
  (void)rng;  // contraction is deterministic
  if (prep != nullptr) return distribution_of(prep).expectation;
  return distribution_of(prepare(w, a).get()).expectation;
}

std::uint64_t ZxTensorBackend::sample_one(const Workload& w,
                                          const qaoa::Angles& a, Rng& rng,
                                          const Prepared* prep) const {
  std::shared_ptr<const Prepared> local;
  if (prep == nullptr) {
    local = prepare(w, a);
    prep = local.get();
  }
  return distribution_of(prep).sample(rng);
}

}  // namespace mbq::api
