#include "mbq/api/session.h"

#include <algorithm>
#include <exception>
#include <mutex>

#include "mbq/api/registry.h"
#include "mbq/common/error.h"
#include "mbq/common/parallel.h"

namespace mbq::api {

const Shot& SampleResult::best() const {
  MBQ_REQUIRE(!shots.empty(), "no shots recorded");
  const Shot* best = &shots.front();
  for (const Shot& s : shots)
    if (s.cost > best->cost) best = &s;
  return *best;
}

real SampleResult::mean_cost() const {
  MBQ_REQUIRE(!shots.empty(), "no shots recorded");
  real acc = 0.0;
  for (const Shot& s : shots) acc += s.cost;
  return acc / static_cast<real>(shots.size());
}

std::vector<std::int64_t> SampleResult::counts(int num_qubits) const {
  MBQ_REQUIRE(num_qubits >= 1 && num_qubits <= 24,
              "histogram needs 1 <= n <= 24, got " << num_qubits);
  std::vector<std::int64_t> out(std::size_t{1} << num_qubits, 0);
  for (const Shot& s : shots) {
    MBQ_REQUIRE(s.x < out.size(), "shot outcome " << s.x << " out of range");
    ++out[s.x];
  }
  return out;
}

Session::Session(Workload workload, const std::string& backend_name,
                 SessionOptions options)
    : Session(std::move(workload),
              BackendRegistry::instance().create(backend_name), options) {}

Session::Session(Workload workload, std::shared_ptr<Backend> backend,
                 SessionOptions options)
    : workload_(std::move(workload)),
      backend_(std::move(backend)),
      options_(options),
      rng_(options.seed) {
  MBQ_REQUIRE(backend_ != nullptr, "Session needs a backend");
  MBQ_REQUIRE(options_.cache_capacity >= 1, "cache capacity must be >= 1");
}

const Prepared* Session::peek_cache(const std::vector<real>& key) const {
  for (const CacheEntry& entry : cache_)
    if (entry.key == key) return entry.prepared.get();
  return nullptr;
}

std::string Session::unsupported_reason(const qaoa::Angles& a) const {
  // Hand the backend any cached artifact so checks that need the
  // compiled pattern (clifford) do not recompile it.
  return backend_->unsupported_reason(workload_, a, peek_cache(a.flat()));
}

void Session::require_supported(const qaoa::Angles& a) const {
  const std::string reason = unsupported_reason(a);
  MBQ_REQUIRE(reason.empty(),
              "backend '" << backend_->name() << "' cannot run this workload: "
                          << reason);
}

std::shared_ptr<const Prepared> Session::checked_prepared(
    const qaoa::Angles& a) {
  const std::vector<real> key = a.flat();
  for (CacheEntry& entry : cache_) {
    if (entry.key == key) {
      entry.last_used = ++cache_clock_;
      ++cache_hits_;
      return entry.prepared;
    }
  }
  const std::string reason =
      backend_->unsupported_reason(workload_, a, nullptr);
  MBQ_REQUIRE(reason.empty(),
              "backend '" << backend_->name() << "' cannot run this workload: "
                          << reason);
  ++cache_misses_;
  auto prepared = backend_->prepare(workload_, a);
  if (prepared == nullptr) return nullptr;  // nothing cacheable
  if (cache_.size() >= options_.cache_capacity) {
    const auto lru = std::min_element(
        cache_.begin(), cache_.end(), [](const auto& x, const auto& y) {
          return x.last_used < y.last_used;
        });
    cache_.erase(lru);
  }
  cache_.push_back({key, prepared, ++cache_clock_});
  return prepared;
}

real Session::expectation(const qaoa::Angles& a) {
  const auto prepared = checked_prepared(a);
  return backend_->expectation(workload_, a, rng_, prepared.get());
}

SampleResult Session::sample(const qaoa::Angles& a, int shots) {
  MBQ_REQUIRE(shots >= 1, "need at least one shot, got " << shots);
  const auto prepared = checked_prepared(a);

  // Shot s of call k draws from stream(s) of a per-call base generator,
  // itself stream(k) of the root: deterministic in (seed, k, s) and
  // independent of the thread count and iteration order.
  const Rng base = rng_.stream(sample_calls_++);

  SampleResult result;
  result.shots.resize(static_cast<std::size_t>(shots));
  Shot* out = result.shots.data();
  const Workload& w = workload_;
  Backend* backend = backend_.get();
  const Prepared* prep = prepared.get();

  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::int64_t grain = options_.parallel_shots ? 1 : shots + 1;
  parallel_for_grain(shots, grain, [&](std::int64_t s) {
    try {
      Rng shot_rng = base.stream(static_cast<std::uint64_t>(s));
      const std::uint64_t x = backend->sample_one(w, a, shot_rng, prep);
      out[s] = {x, w.cost().evaluate(x)};
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  });
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

Shot Session::best_of(const qaoa::Angles& a, int shots) {
  return sample(a, shots).best();
}

opt::Objective Session::objective() {
  return [this](const std::vector<real>& flat) {
    return expectation(qaoa::Angles::from_flat(flat));
  };
}

}  // namespace mbq::api
