#include "mbq/api/session.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "mbq/api/registry.h"
#include "mbq/common/error.h"
#include "mbq/common/parallel.h"
#include "mbq/serve/client.h"
#include "mbq/shard/plan.h"
#include "mbq/shard/protocol.h"
#include "mbq/shard/worker_pool.h"
#include "mbq/sim/collapse_threaded.h"

namespace mbq::api {

namespace {

int resolve_num_processes(int requested) {
  if (requested >= 1) return requested;
  if (const char* env = std::getenv("MBQ_NUM_PROCESSES"))
    if (const int n = std::atoi(env); n >= 1) return n;
  return 1;
}

}  // namespace

const Shot& SampleResult::best() const {
  MBQ_REQUIRE(!shots.empty(), "no shots recorded");
  const Shot* best = &shots.front();
  for (const Shot& s : shots)
    if (s.cost > best->cost) best = &s;
  return *best;
}

real SampleResult::mean_cost() const {
  MBQ_REQUIRE(!shots.empty(), "no shots recorded");
  real acc = 0.0;
  for (const Shot& s : shots) acc += s.cost;
  return acc / static_cast<real>(shots.size());
}

std::vector<std::int64_t> SampleResult::counts(int num_qubits) const {
  MBQ_REQUIRE(num_qubits >= 1,
              "histogram needs at least one qubit, got " << num_qubits);
  MBQ_REQUIRE(num_qubits <= 24,
              "counts(" << num_qubits << ") would allocate a 2^" << num_qubits
                        << "-entry dense histogram (>128 MiB); counts() "
                           "supports at most 24 qubits — aggregate the shots "
                           "directly for larger registers");
  std::vector<std::int64_t> out(std::size_t{1} << num_qubits, 0);
  for (const Shot& s : shots) {
    MBQ_REQUIRE(s.x < out.size(), "shot outcome " << s.x << " out of range");
    ++out[s.x];
  }
  return out;
}

std::map<std::uint64_t, std::int64_t> SampleResult::counts_map() const {
  std::map<std::uint64_t, std::int64_t> out;
  for (const Shot& s : shots) ++out[s.x];
  return out;
}

Session::Session(Workload workload, const std::string& backend_name,
                 SessionOptions options)
    : Session(std::move(workload),
              BackendRegistry::instance().create(backend_name), options) {
  // Record the exact key the user picked: it may carry configuration the
  // backend's own name() does not (e.g. "router-checked" names itself
  // "router"), and a worker process rebuilds the backend from this key.
  // Runtime-registered keys stay unset: they exist in THIS process's
  // registry only, so a worker could not rebuild them (no sharding).
  registry_key_ = BackendRegistry::instance().is_builtin(backend_name)
                      ? backend_name
                      : std::string{};
}

Session::Session(Workload workload, std::shared_ptr<Backend> backend,
                 SessionOptions options)
    : workload_(std::move(workload)),
      backend_(std::move(backend)),
      options_(options),
      rng_(options.seed) {
  MBQ_REQUIRE(backend_ != nullptr, "Session needs a backend");
  MBQ_REQUIRE(options_.cache_capacity >= 1, "cache capacity must be >= 1");
  if (options_.entangler_noise != 0.0) {
    MBQ_REQUIRE(workload_.entangler_noise() == 0.0 ||
                    workload_.entangler_noise() == options_.entangler_noise,
                "SessionOptions::entangler_noise = "
                    << options_.entangler_noise
                    << " conflicts with the workload's own noise level "
                    << workload_.entangler_noise());
    workload_.with_entangler_noise(options_.entangler_noise);
  }
  if (options_.precision != Precision::F64) {
    MBQ_REQUIRE(workload_.precision() == Precision::F64 ||
                    workload_.precision() == options_.precision,
                "SessionOptions::precision = "
                    << precision_name(options_.precision)
                    << " conflicts with the workload's own precision "
                    << precision_name(workload_.precision()));
    workload_.with_precision(options_.precision);
  }
  if (options_.kernel_threads > 0)
    thr::set_kernel_threads(options_.kernel_threads);
  num_processes_ = resolve_num_processes(options_.num_processes);
  daemon_endpoint_ = options_.daemon_endpoint;
  if (daemon_endpoint_.empty())
    if (const char* env = std::getenv("MBQ_DAEMON_ENDPOINT"))
      daemon_endpoint_ = env;
  // Instance-constructed sessions never shard (registry_key_ stays
  // empty): a worker rebuilds backends from a registry key, and a name
  // match alone cannot prove the instance carries the key's default
  // configuration — e.g. a RouterBackend with custom RouterOptions
  // still names itself "router", and a worker rebuilding "router"
  // would route differently, breaking bit-identity.  Construct by
  // registry name to opt into sharding.
}

Session::~Session() = default;

int Session::shard_workers() const noexcept {
  return pool_ != nullptr && pool_->alive() ? pool_->size() : 0;
}

shard::WorkerPool* Session::shard_pool(std::uint64_t items) {
  if (num_processes_ <= 1 || shard_disabled_ || items < 2) return nullptr;
  if (registry_key_.empty() || !shard::shardable(workload_)) return nullptr;
  if (pool_ == nullptr) {
    const std::string path =
        shard::resolve_worker_path(options_.worker_path);
    if (path.empty()) {
      shard_disabled_ = true;  // no worker executable: stay in-process
      return nullptr;
    }
    try {
      pool_ = std::make_unique<shard::WorkerPool>(num_processes_, path);
    } catch (const Error&) {
      shard_disabled_ = true;
      return nullptr;
    }
  }
  if (!pool_->alive()) {
    pool_.reset();
    shard_disabled_ = true;
    return nullptr;
  }
  return pool_.get();
}

const Prepared* Session::peek_cache(const std::vector<real>& key) const {
  for (const CacheEntry& entry : cache_)
    if (entry.key == key) return entry.prepared.get();
  return nullptr;
}

std::string Session::unsupported_reason(const qaoa::Angles& a) const {
  // Hand the backend any cached artifact so checks that need the
  // compiled pattern (clifford) do not recompile it.
  return backend_->unsupported_reason(workload_, a, peek_cache(a.flat()));
}

void Session::require_supported(const qaoa::Angles& a) const {
  const std::string reason = unsupported_reason(a);
  MBQ_REQUIRE(reason.empty(),
              "backend '" << backend_->name() << "' cannot run this workload: "
                          << reason);
}

void Session::insert_cache(std::vector<real> key,
                           std::shared_ptr<const Prepared> prepared) {
  if (cache_.size() >= options_.cache_capacity) {
    const auto lru = std::min_element(
        cache_.begin(), cache_.end(), [](const auto& x, const auto& y) {
          return x.last_used < y.last_used;
        });
    cache_.erase(lru);
  }
  cache_.push_back({std::move(key), std::move(prepared), ++cache_clock_});
}

std::shared_ptr<const Prepared> Session::checked_prepared(
    const qaoa::Angles& a) {
  const std::vector<real> key = a.flat();
  for (CacheEntry& entry : cache_) {
    if (entry.key == key) {
      entry.last_used = ++cache_clock_;
      ++cache_hits_;
      return entry.prepared;
    }
  }
  const std::string reason =
      backend_->unsupported_reason(workload_, a, nullptr);
  MBQ_REQUIRE(reason.empty(),
              "backend '" << backend_->name() << "' cannot run this workload: "
                          << reason);
  ++cache_misses_;
  auto prepared = backend_->prepare(workload_, a);
  if (prepared == nullptr) return nullptr;  // nothing cacheable
  insert_cache(key, prepared);
  return prepared;
}

std::vector<std::shared_ptr<const Prepared>> Session::checked_prepared_batch(
    std::span<const qaoa::Angles> points) {
  const std::size_t n = points.size();
  std::vector<std::shared_ptr<const Prepared>> preps(n);
  if (n == 0) return preps;
  // Pre-warm the workload's memoized cost table before stateless workers
  // share the workload concurrently.
  workload_.cost_table();

  std::vector<std::vector<real>> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = points[i].flat();

  // Serial pass: resolve cache hits; later in-batch duplicates of a
  // missing point share its artifact and count as hits, as they would in
  // the serial loop.
  constexpr std::size_t kHit = static_cast<std::size_t>(-1);
  std::vector<std::size_t> owner(n, kHit);  // point -> unique-miss slot
  std::vector<std::size_t> miss;            // first-occurrence point index
  for (std::size_t i = 0; i < n; ++i) {
    bool hit = false;
    for (CacheEntry& entry : cache_) {
      if (entry.key == keys[i]) {
        entry.last_used = ++cache_clock_;
        ++cache_hits_;
        preps[i] = entry.prepared;
        hit = true;
        break;
      }
    }
    if (hit) continue;
    bool duplicate = false;
    for (std::size_t m = 0; m < miss.size(); ++m)
      if (keys[miss[m]] == keys[i]) {
        owner[i] = m;
        ++cache_hits_;
        duplicate = true;
        break;
      }
    if (duplicate) continue;
    owner[i] = miss.size();
    miss.push_back(i);
  }

  // Parallel pass: support check + prepare for every unique miss.  The
  // backend is stateless, so checks and compilations are independent.
  std::vector<std::shared_ptr<const Prepared>> fresh(miss.size());
  std::vector<std::exception_ptr> errors(miss.size());
  parallel_for_grain(static_cast<std::int64_t>(miss.size()), 1,
                     [&](std::int64_t m) {
    try {
      const qaoa::Angles& a = points[miss[m]];
      const std::string reason =
          backend_->unsupported_reason(workload_, a, nullptr);
      MBQ_REQUIRE(reason.empty(),
                  "backend '" << backend_->name()
                              << "' cannot run this workload: " << reason);
      fresh[m] = backend_->prepare(workload_, a);
    } catch (...) {
      errors[m] = std::current_exception();
    }
  });
  // Serial pass: record misses and fill the cache in point order.
  // `miss` is in increasing point order, so a failure rethrows for the
  // lowest-indexed failing point with every earlier point already cached
  // and counted — the exact state the serial loop leaves behind.
  for (std::size_t m = 0; m < miss.size(); ++m) {
    if (errors[m]) std::rethrow_exception(errors[m]);
    ++cache_misses_;
    if (fresh[m] != nullptr) insert_cache(std::move(keys[miss[m]]), fresh[m]);
  }
  for (std::size_t i = 0; i < n; ++i)
    if (owner[i] != kHit) preps[i] = fresh[owner[i]];
  return preps;
}

real Session::expectation(const qaoa::Angles& a) {
  const auto prepared = checked_prepared(a);
  Rng eval_rng = rng_.stream(kExpectationStreamBase + expectation_calls_++);
  return backend_->expectation(workload_, a, eval_rng, prepared.get());
}

std::vector<real> Session::expectation_batch(
    std::span<const qaoa::Angles> points) {
  const std::size_t n = points.size();
  std::vector<real> out(n);
  if (n == 0) return out;

  if (remote()) return expectation_batch_remote(points);

  if (auto* pool = shard_pool(n)) {
    const std::uint64_t base = expectation_calls_;
    expectation_calls_ += n;
    return expectation_batch_sharded(points, base, *pool);
  }

  const auto preps = checked_prepared_batch(points);
  const std::uint64_t base = expectation_calls_;
  expectation_calls_ += n;

  const Workload& w = workload_;
  Backend* backend = backend_.get();
  std::vector<std::exception_ptr> errors(n);
  parallel_for_grain(static_cast<std::int64_t>(n), 1, [&](std::int64_t i) {
    try {
      // Slot i draws exactly the stream the (base + i)-th serial
      // expectation() call would: bit-identical at any thread count.
      Rng eval_rng = rng_.stream(kExpectationStreamBase + base +
                                 static_cast<std::uint64_t>(i));
      out[i] = backend->expectation(w, points[i], eval_rng, preps[i].get());
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return out;
}

std::future<real> Session::expectation_async(const qaoa::Angles& a) {
  // Cache update and stream assignment happen on the calling thread (the
  // cache is not synchronized); only the stateless evaluation is
  // offloaded, so concurrent pending futures cannot race.
  workload_.cost_table();  // pre-warm the shared memo before offloading
  auto prepared = checked_prepared(a);
  Rng eval_rng = rng_.stream(kExpectationStreamBase + expectation_calls_++);
  return std::async(std::launch::async,
                    [this, a, eval_rng, prepared]() mutable {
                      return backend_->expectation(workload_, a, eval_rng,
                                                   prepared.get());
                    });
}

SampleResult Session::sample(const qaoa::Angles& a, int shots) {
  MBQ_REQUIRE(shots >= 1, "need at least one shot, got " << shots);
  if (remote()) return sample_remote(a, shots);
  const auto prepared = checked_prepared(a);

  if (auto* pool = shard_pool(static_cast<std::uint64_t>(shots)))
    return sample_sharded(a, shots, sample_calls_++, *pool);

  // Shot s of call k draws from stream(s) of a per-call base generator,
  // itself stream(k) of the root: deterministic in (seed, k, s) and
  // independent of the thread count and iteration order.
  const Rng base = rng_.stream(sample_calls_++);

  SampleResult result;
  result.shots.resize(static_cast<std::size_t>(shots));
  Shot* out = result.shots.data();
  const Workload& w = workload_;
  Backend* backend = backend_.get();
  const Prepared* prep = prepared.get();

  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::int64_t grain = options_.parallel_shots ? 1 : shots + 1;
  parallel_for_grain(shots, grain, [&](std::int64_t s) {
    try {
      Rng shot_rng = base.stream(static_cast<std::uint64_t>(s));
      const std::uint64_t x = backend->sample_one(w, a, shot_rng, prep);
      out[s] = {x, w.cost().evaluate(x)};
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  });
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

std::vector<SampleResult> Session::sample_batch(
    std::span<const qaoa::Angles> points, int shots) {
  MBQ_REQUIRE(shots >= 1, "need at least one shot, got " << shots);
  const std::size_t n = points.size();
  std::vector<SampleResult> results(n);
  if (n == 0) return results;
  if (remote()) return sample_batch_remote(points, shots);
  const auto preps = checked_prepared_batch(points);
  // Point i draws from the stream the i-th of n consecutive serial
  // sample() calls would, and shot s from stream(s) below it — so every
  // (point, shot) pair is a pure function of (seed, call index, s) and
  // the whole cross product can run concurrently.
  const std::uint64_t base_call = sample_calls_;
  sample_calls_ += n;

  if (auto* pool =
          shard_pool(n * static_cast<std::uint64_t>(shots)))
    return sample_batch_sharded(points, shots, base_call, *pool);
  for (auto& r : results) r.shots.resize(static_cast<std::size_t>(shots));

  const Workload& w = workload_;
  Backend* backend = backend_.get();
  std::vector<std::exception_ptr> errors(n);
  std::mutex error_mutex;
  const std::int64_t total = static_cast<std::int64_t>(n) * shots;
  const std::int64_t grain = options_.parallel_shots ? 1 : total + 1;
  parallel_for_grain(total, grain, [&](std::int64_t t) {
    const std::size_t i = static_cast<std::size_t>(t / shots);
    const std::int64_t s = t % shots;
    try {
      Rng shot_rng = rng_.stream(base_call + i)
                         .stream(static_cast<std::uint64_t>(s));
      const std::uint64_t x =
          backend->sample_one(w, points[i], shot_rng, preps[i].get());
      results[i].shots[s] = {x, w.cost().evaluate(x)};
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!errors[i]) errors[i] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return results;
}

namespace {

struct DecodedRound {
  std::vector<shard::Response> responses;  // in worker order
  /// Lowest-GLOBAL-index failure across workers (what the serial sample
  /// loop, which collects per-index errors, would rethrow), or nullptr.
  const shard::Response* failed = nullptr;
  /// Lowest-index CHECK-phase (support/prepare) failure.  The serial
  /// expectation loop runs every check before any eval, so when one
  /// exists it wins over any eval failure regardless of index.
  const shard::Response* failed_check = nullptr;
};

/// Decode every worker's response frame.  Workers report slice-local
/// error indices (their requests carry only their own slice);
/// `offsets[w]` maps them back to the call's global index space so
/// failures order correctly across workers.
DecodedRound decode_round(std::vector<std::vector<std::byte>> frames,
                          const std::vector<std::vector<std::byte>>& requests,
                          const std::vector<std::uint64_t>& offsets) {
  DecodedRound round;
  round.responses.resize(frames.size());
  std::uint64_t failed_global = 0, failed_check_global = 0;
  for (std::size_t w = 0; w < frames.size(); ++w) {
    if (requests[w].empty()) continue;
    round.responses[w] = shard::decode_response(frames[w]);
    const shard::Response& r = round.responses[w];
    if (!r.ok) {
      const std::uint64_t global = offsets[w] + r.error_index;
      if (round.failed == nullptr || global < failed_global) {
        round.failed = &round.responses[w];
        failed_global = global;
      }
      if (!r.error_in_eval &&
          (round.failed_check == nullptr || global < failed_check_global)) {
        round.failed_check = &round.responses[w];
        failed_check_global = global;
      }
    }
  }
  return round;
}

}  // namespace

SampleResult Session::sample_sharded(const qaoa::Angles& a, int shots,
                                     std::uint64_t call,
                                     shard::WorkerPool& pool) {
  // Each worker replays a contiguous shot slice of this call on streams
  // stream(call).stream(s) — exactly what the in-process loop draws — so
  // concatenating the slices in order reproduces it bit for bit.
  const shard::ShardPlan plan(static_cast<std::uint64_t>(shots), pool.size());
  shard::Request req;
  req.kind = shard::TaskKind::kSample;
  req.backend = registry_key_;
  req.seed = options_.seed;
  req.workload = workload_;
  req.points = {a};
  req.shots = static_cast<std::uint64_t>(shots);
  req.base_call = call;
  req.end = static_cast<std::uint64_t>(shots);
  std::vector<std::vector<std::byte>> requests(plan.ranges().size());
  std::vector<std::uint64_t> offsets(plan.ranges().size(), 0);
  for (std::size_t w = 0; w < plan.ranges().size(); ++w) {
    const shard::ShardRange& r = plan.ranges()[w];
    if (r.empty()) continue;
    const shard::SliceRequest sub = shard::rebase_slice(req, r.begin, r.end);
    offsets[w] = sub.offset;
    requests[w] = shard::encode_request(sub.request);
  }

  const DecodedRound round =
      decode_round(pool.round(requests), requests, offsets);
  if (round.failed != nullptr) throw Error(round.failed->error_message);
  SampleResult result;
  result.shots.resize(static_cast<std::size_t>(shots));
  for (std::size_t w = 0; w < round.responses.size(); ++w) {
    const shard::ShardRange& r = plan.ranges()[w];
    MBQ_REQUIRE(requests[w].empty() ||
                    round.responses[w].outcomes.size() == r.size(),
                "shard worker " << w << " returned "
                                << round.responses[w].outcomes.size()
                                << " outcomes for a slice of " << r.size());
    for (std::uint64_t s = r.begin; s < r.end; ++s) {
      const std::uint64_t x = round.responses[w].outcomes[s - r.begin];
      result.shots[s] = {x, workload_.cost().evaluate(x)};
    }
  }
  return result;
}

std::vector<SampleResult> Session::sample_batch_sharded(
    std::span<const qaoa::Angles> points, int shots, std::uint64_t base_call,
    shard::WorkerPool& pool) {
  const std::size_t n = points.size();
  const std::uint64_t su = static_cast<std::uint64_t>(shots);
  const std::uint64_t total = n * su;
  // Slices cover the flattened (point, shot) space: pair t belongs to
  // point t / shots, shot t % shots, on stream(base_call + point)
  // .stream(shot) — the same assignment the in-process loop uses.  Each
  // worker receives only the points its slice touches, with base_call
  // and the slice bounds rebased so the absolute stream indices are
  // unchanged.
  const shard::ShardPlan plan(total, pool.size());
  shard::Request req;
  req.kind = shard::TaskKind::kSample;
  req.backend = registry_key_;
  req.seed = options_.seed;
  req.workload = workload_;
  req.points.assign(points.begin(), points.end());
  req.shots = su;
  req.base_call = base_call;
  req.end = total;
  std::vector<std::vector<std::byte>> requests(plan.ranges().size());
  std::vector<std::uint64_t> offsets(plan.ranges().size(), 0);
  for (std::size_t w = 0; w < plan.ranges().size(); ++w) {
    const shard::ShardRange& r = plan.ranges()[w];
    if (r.empty()) continue;
    const shard::SliceRequest sub = shard::rebase_slice(req, r.begin, r.end);
    offsets[w] = sub.offset;
    requests[w] = shard::encode_request(sub.request);
  }

  const DecodedRound round =
      decode_round(pool.round(requests), requests, offsets);
  if (round.failed != nullptr) throw Error(round.failed->error_message);
  std::vector<SampleResult> results(n);
  for (auto& r : results) r.shots.resize(static_cast<std::size_t>(shots));
  for (std::size_t w = 0; w < round.responses.size(); ++w) {
    const shard::ShardRange& r = plan.ranges()[w];
    MBQ_REQUIRE(requests[w].empty() ||
                    round.responses[w].outcomes.size() == r.size(),
                "shard worker " << w << " returned "
                                << round.responses[w].outcomes.size()
                                << " outcomes for a slice of " << r.size());
    for (std::uint64_t t = r.begin; t < r.end; ++t) {
      const std::size_t i = static_cast<std::size_t>(t / su);
      const std::size_t s = static_cast<std::size_t>(t % su);
      const std::uint64_t x = round.responses[w].outcomes[t - r.begin];
      results[i].shots[s] = {x, workload_.cost().evaluate(x)};
    }
  }
  return results;
}

std::vector<real> Session::expectation_batch_sharded(
    std::span<const qaoa::Angles> points, std::uint64_t base,
    shard::WorkerPool& pool) {
  const std::size_t n = points.size();
  const shard::ShardPlan plan(n, pool.size());
  shard::Request req;
  req.kind = shard::TaskKind::kExpectation;
  req.backend = registry_key_;
  req.seed = options_.seed;
  req.workload = workload_;
  req.points.assign(points.begin(), points.end());
  req.stream_base = kExpectationStreamBase + base;
  req.end = n;
  std::vector<std::vector<std::byte>> requests(plan.ranges().size());
  std::vector<std::uint64_t> offsets(plan.ranges().size(), 0);
  for (std::size_t w = 0; w < plan.ranges().size(); ++w) {
    const shard::ShardRange& r = plan.ranges()[w];
    if (r.empty()) continue;
    // Only this worker's points travel; rebase_slice makes stream_base
    // absorb the slice offset so point j of the slice still draws the
    // global stream of point r.begin + j.
    const shard::SliceRequest sub = shard::rebase_slice(req, r.begin, r.end);
    offsets[w] = sub.offset;
    requests[w] = shard::encode_request(sub.request);
  }

  // Transport failures (a worker died mid-call) propagate with the
  // counter left advanced — like a serial eval crashing after the batch
  // advanced it.  Worker-REPORTED failures replay the serial loop's
  // phase order: it support-checks and prepares every point before
  // burning any stream index, so a check/prepare failure anywhere wins
  // over eval failures and restores the counter; a pure eval failure
  // leaves the indices consumed.
  const DecodedRound round =
      decode_round(pool.round(requests), requests, offsets);
  if (round.failed_check != nullptr) {
    expectation_calls_ = base;
    throw Error(round.failed_check->error_message);
  }
  if (round.failed != nullptr) throw Error(round.failed->error_message);
  std::vector<real> out(n);
  for (std::size_t w = 0; w < round.responses.size(); ++w) {
    const shard::ShardRange& r = plan.ranges()[w];
    MBQ_REQUIRE(requests[w].empty() ||
                    round.responses[w].values.size() == r.size(),
                "shard worker " << w << " returned "
                                << round.responses[w].values.size()
                                << " values for a slice of " << r.size());
    for (std::uint64_t i = r.begin; i < r.end; ++i)
      out[i] = round.responses[w].values[i - r.begin];
  }
  return out;
}

shard::Request Session::base_request() const {
  shard::Request req;
  req.backend = registry_key_;
  req.seed = options_.seed;
  req.workload = workload_;
  return req;
}

Session::RemoteRun Session::run_remote(const shard::Request& req) {
  if (daemon_ == nullptr) {
    // Remote mode was requested explicitly (options or environment), so
    // an impossible transport is an error, never a silent local run —
    // callers pointing a fleet of Sessions at one daemon must not
    // discover months later that half of them quietly computed locally.
    MBQ_REQUIRE(!registry_key_.empty(),
                "daemon transport requires a registry-named backend: a "
                "worker process cannot reproduce a backend INSTANCE from "
                "a name (construct the Session with a registry key)");
    const std::string reason = shard::unshardable_reason(workload_);
    MBQ_REQUIRE(reason.empty(),
                "workload cannot execute on daemon '"
                    << daemon_endpoint_ << "': " << reason);
    daemon_ = std::make_unique<serve::DaemonClient>(daemon_endpoint_,
                                                    "mbq-session");
  }
  try {
    serve::DaemonClient::RunResult r = daemon_->run(req);
    return {std::move(r.outcomes), std::move(r.values)};
  } catch (const serve::RemoteError&) {
    throw;  // the connection is still good; the request failed
  } catch (const serve::BusyError&) {
    throw;
  } catch (const Error&) {
    daemon_.reset();  // broken transport: reconnect on the next call
    throw;
  }
}

SampleResult Session::sample_remote(const qaoa::Angles& a, int shots) {
  const std::uint64_t call = sample_calls_++;
  shard::Request req = base_request();
  req.kind = shard::TaskKind::kSample;
  req.points = {a};
  req.shots = static_cast<std::uint64_t>(shots);
  req.base_call = call;
  req.end = static_cast<std::uint64_t>(shots);
  try {
    const RemoteRun run = run_remote(req);
    SampleResult result;
    result.shots.resize(static_cast<std::size_t>(shots));
    for (std::size_t s = 0; s < run.outcomes.size(); ++s)
      result.shots[s] = {run.outcomes[s],
                         workload_.cost().evaluate(run.outcomes[s])};
    return result;
  } catch (const serve::RemoteError& e) {
    // The serial loop support-checks before assigning the call index, so
    // a check-phase failure must leave the counter untouched; an eval
    // failure happens after and keeps it.
    if (!e.in_eval()) sample_calls_ = call;
    throw;
  }
}

std::vector<SampleResult> Session::sample_batch_remote(
    std::span<const qaoa::Angles> points, int shots) {
  const std::size_t n = points.size();
  const std::uint64_t su = static_cast<std::uint64_t>(shots);
  const std::uint64_t base_call = sample_calls_;
  sample_calls_ += n;
  shard::Request req = base_request();
  req.kind = shard::TaskKind::kSample;
  req.points.assign(points.begin(), points.end());
  req.shots = su;
  req.base_call = base_call;
  req.end = n * su;
  try {
    const RemoteRun run = run_remote(req);
    std::vector<SampleResult> results(n);
    for (auto& r : results) r.shots.resize(static_cast<std::size_t>(shots));
    for (std::uint64_t t = 0; t < run.outcomes.size(); ++t) {
      const std::uint64_t x = run.outcomes[t];
      results[t / su].shots[t % su] = {x, workload_.cost().evaluate(x)};
    }
    return results;
  } catch (const serve::RemoteError& e) {
    if (!e.in_eval()) sample_calls_ = base_call;
    throw;
  }
}

std::vector<real> Session::expectation_batch_remote(
    std::span<const qaoa::Angles> points) {
  const std::size_t n = points.size();
  const std::uint64_t base = expectation_calls_;
  expectation_calls_ += n;
  shard::Request req = base_request();
  req.kind = shard::TaskKind::kExpectation;
  req.points.assign(points.begin(), points.end());
  req.stream_base = kExpectationStreamBase + base;
  req.end = n;
  try {
    return run_remote(req).values;
  } catch (const serve::RemoteError& e) {
    // Same phase rule as expectation_batch_sharded: check failures
    // restore the counter, eval failures leave the indices consumed.
    if (!e.in_eval()) expectation_calls_ = base;
    throw;
  }
}

Shot Session::best_of(const qaoa::Angles& a, int shots) {
  return sample(a, shots).best();
}

opt::Objective Session::objective() {
  return [this](const std::vector<real>& flat) {
    return expectation(qaoa::Angles::from_flat(flat));
  };
}

opt::BatchObjective Session::batch_objective() {
  return [this](const std::vector<std::vector<real>>& flats) {
    std::vector<qaoa::Angles> points;
    points.reserve(flats.size());
    for (const auto& flat : flats)
      points.push_back(qaoa::Angles::from_flat(flat));
    return expectation_batch(points);
  };
}

}  // namespace mbq::api
