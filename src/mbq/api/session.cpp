#include "mbq/api/session.h"

#include <algorithm>
#include <exception>
#include <mutex>

#include "mbq/api/registry.h"
#include "mbq/common/error.h"
#include "mbq/common/parallel.h"

namespace mbq::api {

const Shot& SampleResult::best() const {
  MBQ_REQUIRE(!shots.empty(), "no shots recorded");
  const Shot* best = &shots.front();
  for (const Shot& s : shots)
    if (s.cost > best->cost) best = &s;
  return *best;
}

real SampleResult::mean_cost() const {
  MBQ_REQUIRE(!shots.empty(), "no shots recorded");
  real acc = 0.0;
  for (const Shot& s : shots) acc += s.cost;
  return acc / static_cast<real>(shots.size());
}

std::vector<std::int64_t> SampleResult::counts(int num_qubits) const {
  MBQ_REQUIRE(num_qubits >= 1,
              "histogram needs at least one qubit, got " << num_qubits);
  MBQ_REQUIRE(num_qubits <= 24,
              "counts(" << num_qubits << ") would allocate a 2^" << num_qubits
                        << "-entry dense histogram (>128 MiB); counts() "
                           "supports at most 24 qubits — aggregate the shots "
                           "directly for larger registers");
  std::vector<std::int64_t> out(std::size_t{1} << num_qubits, 0);
  for (const Shot& s : shots) {
    MBQ_REQUIRE(s.x < out.size(), "shot outcome " << s.x << " out of range");
    ++out[s.x];
  }
  return out;
}

Session::Session(Workload workload, const std::string& backend_name,
                 SessionOptions options)
    : Session(std::move(workload),
              BackendRegistry::instance().create(backend_name), options) {}

Session::Session(Workload workload, std::shared_ptr<Backend> backend,
                 SessionOptions options)
    : workload_(std::move(workload)),
      backend_(std::move(backend)),
      options_(options),
      rng_(options.seed) {
  MBQ_REQUIRE(backend_ != nullptr, "Session needs a backend");
  MBQ_REQUIRE(options_.cache_capacity >= 1, "cache capacity must be >= 1");
}

const Prepared* Session::peek_cache(const std::vector<real>& key) const {
  for (const CacheEntry& entry : cache_)
    if (entry.key == key) return entry.prepared.get();
  return nullptr;
}

std::string Session::unsupported_reason(const qaoa::Angles& a) const {
  // Hand the backend any cached artifact so checks that need the
  // compiled pattern (clifford) do not recompile it.
  return backend_->unsupported_reason(workload_, a, peek_cache(a.flat()));
}

void Session::require_supported(const qaoa::Angles& a) const {
  const std::string reason = unsupported_reason(a);
  MBQ_REQUIRE(reason.empty(),
              "backend '" << backend_->name() << "' cannot run this workload: "
                          << reason);
}

void Session::insert_cache(std::vector<real> key,
                           std::shared_ptr<const Prepared> prepared) {
  if (cache_.size() >= options_.cache_capacity) {
    const auto lru = std::min_element(
        cache_.begin(), cache_.end(), [](const auto& x, const auto& y) {
          return x.last_used < y.last_used;
        });
    cache_.erase(lru);
  }
  cache_.push_back({std::move(key), std::move(prepared), ++cache_clock_});
}

std::shared_ptr<const Prepared> Session::checked_prepared(
    const qaoa::Angles& a) {
  const std::vector<real> key = a.flat();
  for (CacheEntry& entry : cache_) {
    if (entry.key == key) {
      entry.last_used = ++cache_clock_;
      ++cache_hits_;
      return entry.prepared;
    }
  }
  const std::string reason =
      backend_->unsupported_reason(workload_, a, nullptr);
  MBQ_REQUIRE(reason.empty(),
              "backend '" << backend_->name() << "' cannot run this workload: "
                          << reason);
  ++cache_misses_;
  auto prepared = backend_->prepare(workload_, a);
  if (prepared == nullptr) return nullptr;  // nothing cacheable
  insert_cache(key, prepared);
  return prepared;
}

std::vector<std::shared_ptr<const Prepared>> Session::checked_prepared_batch(
    std::span<const qaoa::Angles> points) {
  const std::size_t n = points.size();
  std::vector<std::shared_ptr<const Prepared>> preps(n);
  if (n == 0) return preps;
  // Pre-warm the workload's memoized cost table before stateless workers
  // share the workload concurrently.
  workload_.cost_table();

  std::vector<std::vector<real>> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = points[i].flat();

  // Serial pass: resolve cache hits; later in-batch duplicates of a
  // missing point share its artifact and count as hits, as they would in
  // the serial loop.
  constexpr std::size_t kHit = static_cast<std::size_t>(-1);
  std::vector<std::size_t> owner(n, kHit);  // point -> unique-miss slot
  std::vector<std::size_t> miss;            // first-occurrence point index
  for (std::size_t i = 0; i < n; ++i) {
    bool hit = false;
    for (CacheEntry& entry : cache_) {
      if (entry.key == keys[i]) {
        entry.last_used = ++cache_clock_;
        ++cache_hits_;
        preps[i] = entry.prepared;
        hit = true;
        break;
      }
    }
    if (hit) continue;
    bool duplicate = false;
    for (std::size_t m = 0; m < miss.size(); ++m)
      if (keys[miss[m]] == keys[i]) {
        owner[i] = m;
        ++cache_hits_;
        duplicate = true;
        break;
      }
    if (duplicate) continue;
    owner[i] = miss.size();
    miss.push_back(i);
  }

  // Parallel pass: support check + prepare for every unique miss.  The
  // backend is stateless, so checks and compilations are independent.
  std::vector<std::shared_ptr<const Prepared>> fresh(miss.size());
  std::vector<std::exception_ptr> errors(miss.size());
  parallel_for_grain(static_cast<std::int64_t>(miss.size()), 1,
                     [&](std::int64_t m) {
    try {
      const qaoa::Angles& a = points[miss[m]];
      const std::string reason =
          backend_->unsupported_reason(workload_, a, nullptr);
      MBQ_REQUIRE(reason.empty(),
                  "backend '" << backend_->name()
                              << "' cannot run this workload: " << reason);
      fresh[m] = backend_->prepare(workload_, a);
    } catch (...) {
      errors[m] = std::current_exception();
    }
  });
  // Serial pass: record misses and fill the cache in point order.
  // `miss` is in increasing point order, so a failure rethrows for the
  // lowest-indexed failing point with every earlier point already cached
  // and counted — the exact state the serial loop leaves behind.
  for (std::size_t m = 0; m < miss.size(); ++m) {
    if (errors[m]) std::rethrow_exception(errors[m]);
    ++cache_misses_;
    if (fresh[m] != nullptr) insert_cache(std::move(keys[miss[m]]), fresh[m]);
  }
  for (std::size_t i = 0; i < n; ++i)
    if (owner[i] != kHit) preps[i] = fresh[owner[i]];
  return preps;
}

real Session::expectation(const qaoa::Angles& a) {
  const auto prepared = checked_prepared(a);
  Rng eval_rng = rng_.stream(kExpectationStreamBase + expectation_calls_++);
  return backend_->expectation(workload_, a, eval_rng, prepared.get());
}

std::vector<real> Session::expectation_batch(
    std::span<const qaoa::Angles> points) {
  const std::size_t n = points.size();
  std::vector<real> out(n);
  if (n == 0) return out;
  const auto preps = checked_prepared_batch(points);
  const std::uint64_t base = expectation_calls_;
  expectation_calls_ += n;

  const Workload& w = workload_;
  Backend* backend = backend_.get();
  std::vector<std::exception_ptr> errors(n);
  parallel_for_grain(static_cast<std::int64_t>(n), 1, [&](std::int64_t i) {
    try {
      // Slot i draws exactly the stream the (base + i)-th serial
      // expectation() call would: bit-identical at any thread count.
      Rng eval_rng = rng_.stream(kExpectationStreamBase + base +
                                 static_cast<std::uint64_t>(i));
      out[i] = backend->expectation(w, points[i], eval_rng, preps[i].get());
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return out;
}

std::future<real> Session::expectation_async(const qaoa::Angles& a) {
  // Cache update and stream assignment happen on the calling thread (the
  // cache is not synchronized); only the stateless evaluation is
  // offloaded, so concurrent pending futures cannot race.
  workload_.cost_table();  // pre-warm the shared memo before offloading
  auto prepared = checked_prepared(a);
  Rng eval_rng = rng_.stream(kExpectationStreamBase + expectation_calls_++);
  return std::async(std::launch::async,
                    [this, a, eval_rng, prepared]() mutable {
                      return backend_->expectation(workload_, a, eval_rng,
                                                   prepared.get());
                    });
}

SampleResult Session::sample(const qaoa::Angles& a, int shots) {
  MBQ_REQUIRE(shots >= 1, "need at least one shot, got " << shots);
  const auto prepared = checked_prepared(a);

  // Shot s of call k draws from stream(s) of a per-call base generator,
  // itself stream(k) of the root: deterministic in (seed, k, s) and
  // independent of the thread count and iteration order.
  const Rng base = rng_.stream(sample_calls_++);

  SampleResult result;
  result.shots.resize(static_cast<std::size_t>(shots));
  Shot* out = result.shots.data();
  const Workload& w = workload_;
  Backend* backend = backend_.get();
  const Prepared* prep = prepared.get();

  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::int64_t grain = options_.parallel_shots ? 1 : shots + 1;
  parallel_for_grain(shots, grain, [&](std::int64_t s) {
    try {
      Rng shot_rng = base.stream(static_cast<std::uint64_t>(s));
      const std::uint64_t x = backend->sample_one(w, a, shot_rng, prep);
      out[s] = {x, w.cost().evaluate(x)};
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  });
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

std::vector<SampleResult> Session::sample_batch(
    std::span<const qaoa::Angles> points, int shots) {
  MBQ_REQUIRE(shots >= 1, "need at least one shot, got " << shots);
  const std::size_t n = points.size();
  std::vector<SampleResult> results(n);
  if (n == 0) return results;
  const auto preps = checked_prepared_batch(points);
  // Point i draws from the stream the i-th of n consecutive serial
  // sample() calls would, and shot s from stream(s) below it — so every
  // (point, shot) pair is a pure function of (seed, call index, s) and
  // the whole cross product can run concurrently.
  const std::uint64_t base_call = sample_calls_;
  sample_calls_ += n;
  for (auto& r : results) r.shots.resize(static_cast<std::size_t>(shots));

  const Workload& w = workload_;
  Backend* backend = backend_.get();
  std::vector<std::exception_ptr> errors(n);
  std::mutex error_mutex;
  const std::int64_t total = static_cast<std::int64_t>(n) * shots;
  const std::int64_t grain = options_.parallel_shots ? 1 : total + 1;
  parallel_for_grain(total, grain, [&](std::int64_t t) {
    const std::size_t i = static_cast<std::size_t>(t / shots);
    const std::int64_t s = t % shots;
    try {
      Rng shot_rng = rng_.stream(base_call + i)
                         .stream(static_cast<std::uint64_t>(s));
      const std::uint64_t x =
          backend->sample_one(w, points[i], shot_rng, preps[i].get());
      results[i].shots[s] = {x, w.cost().evaluate(x)};
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!errors[i]) errors[i] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return results;
}

Shot Session::best_of(const qaoa::Angles& a, int shots) {
  return sample(a, shots).best();
}

opt::Objective Session::objective() {
  return [this](const std::vector<real>& flat) {
    return expectation(qaoa::Angles::from_flat(flat));
  };
}

opt::BatchObjective Session::batch_objective() {
  return [this](const std::vector<std::vector<real>>& flats) {
    std::vector<qaoa::Angles> points;
    points.reserve(flats.size());
    for (const auto& flat : flats)
      points.push_back(qaoa::Angles::from_flat(flat));
    return expectation_batch(points);
  };
}

}  // namespace mbq::api
