#pragma once
// String-keyed ansatz-kind registry — the extension point that turns the
// CustomCircuit std::function escape hatch into opt-in shardable data.
//
// A registered ansatz kind is pure data on the wire: a WorkloadSpec with
// kind == AnsatzKind::Registered carries the kind's name plus a generic
// integer/real payload, and the registry maps the name to hooks that
// validate the payload and build the declarative qaoa::ParamCircuit the
// backends lower.  Because the spec is data, it serializes through both
// codecs (binary and JSON), fingerprints, and ships to worker processes
// — PROVIDED the worker can resolve the name.  Mirroring
// BackendRegistry, kinds the library registers itself (is_builtin) are
// guaranteed present in every freshly exec'd mbq_worker; kinds added at
// runtime exist in the registering process only, so such workloads
// execute in-process (shard::unshardable_reason explains why) instead of
// failing remotely.

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "mbq/qaoa/param_circuit.h"

namespace mbq::api {

struct WorkloadSpec;

/// Behavior of one registered ansatz kind.  `build` is required; it maps
/// the spec (cost width + registered_ints/registered_reals payload) to
/// the declarative circuit that prepares the trial state from |+...+>.
/// `validate` (optional) checks the payload beyond what build would
/// reject, and runs inside WorkloadSpec::validate() so malformed specs
/// fail at construction/decode time, not at first execution.
struct AnsatzKindHooks {
  std::function<void(const WorkloadSpec&)> validate;
  std::function<qaoa::ParamCircuit(const WorkloadSpec&)> build;
};

class AnsatzKindRegistry {
 public:
  /// The process-wide registry, with built-in kinds pre-registered.
  static AnsatzKindRegistry& instance();

  /// Register hooks under `name`; throws on duplicates or a missing
  /// build hook.
  void add(const std::string& name, AnsatzKindHooks hooks);

  bool contains(const std::string& name) const;

  /// True for kinds the library registers itself — the set every freshly
  /// exec'd process (in particular mbq_worker) is guaranteed to have.
  /// Only workloads passing this test shard across processes.
  bool is_builtin(const std::string& name) const;

  /// Look up by name; throws Error naming the unknown kind and listing
  /// every registered name.
  AnsatzKindHooks hooks(const std::string& name) const;

  /// Sorted registered names.
  std::vector<std::string> names() const;

 private:
  AnsatzKindRegistry();

  mutable std::mutex mutex_;
  std::map<std::string, AnsatzKindHooks> hooks_;
  std::vector<std::string> builtin_names_;  // fixed after construction
};

/// Every name a workload's ansatz may carry, for error messages: the
/// built-in AnsatzKind enum names plus the registered kind names, comma
/// separated ("qaoa, mis, custom, param-circuit, registered:hea-line").
std::string ansatz_kind_listing();

}  // namespace mbq::api
