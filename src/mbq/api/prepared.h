#pragma once
// Shared Prepared implementations for the built-in adapters.
//
// Two artifact shapes cover all four backends: a compiled measurement
// pattern (mbqc, clifford) and an explicit Born distribution with its
// exact expectation (statevector, zx).  Kept in one place so the
// cumulative-search sampling and the downcast boilerplate cannot drift
// between adapters.

#include <algorithm>
#include <memory>
#include <vector>

#include "mbq/api/backend.h"
#include "mbq/common/error.h"
#include "mbq/core/compiler.h"
#include "mbq/mbqc/compiled.h"

namespace mbq::api {

struct PreparedPattern final : Prepared {
  core::CompiledPattern compiled;
  /// The validate-once lowered op tape of compiled.pattern, shared with
  /// per-thread PatternExecutors.  Filled by the backends that execute
  /// on the dynamic statevector (mbqc, mbqc-classical); the tableau path
  /// walks compiled.pattern directly and leaves it null.
  std::shared_ptr<const mbqc::CompiledPattern> executable;
};

inline const core::CompiledPattern& pattern_of(const Prepared* prep) {
  const auto* p = dynamic_cast<const PreparedPattern*>(prep);
  MBQ_ASSERT(p != nullptr);
  return p->compiled;
}

inline const std::shared_ptr<const mbqc::CompiledPattern>& executable_of(
    const Prepared* prep) {
  const auto* p = dynamic_cast<const PreparedPattern*>(prep);
  MBQ_ASSERT(p != nullptr && p->executable != nullptr);
  return p->executable;
}

/// Exact output distribution of a backend whose state is fully known.
struct PreparedDistribution final : Prepared {
  real expectation = 0.0;
  /// cumulative[x] = P(outcome <= x); what sampling needs.
  std::vector<real> cumulative;

  /// Born sample by binary search.
  std::uint64_t sample(Rng& rng) const {
    const real u = rng.uniform();
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    if (it == cumulative.end()) return cumulative.size() - 1;
    return static_cast<std::uint64_t>(it - cumulative.begin());
  }
};

inline const PreparedDistribution& distribution_of(const Prepared* prep) {
  const auto* p = dynamic_cast<const PreparedDistribution*>(prep);
  MBQ_ASSERT(p != nullptr);
  return *p;
}

}  // namespace mbq::api
