#include "mbq/api/registry.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "mbq/api/clifford_backend.h"
#include "mbq/api/mbqc_backend.h"
#include "mbq/api/router_backend.h"
#include "mbq/api/statevector_backend.h"
#include "mbq/api/zx_backend.h"
#include "mbq/common/error.h"

namespace mbq::api {

namespace {

// Candidate list of the registry's default "router"/"router-checked"
// factories, overridable via MBQ_ROUTER_CANDIDATES (a comma-separated
// list of registry names).  The CI battery uses this to re-run the whole
// tier-1 suite with routing pinned to f32-capable adapters; explicitly
// constructed RouterBackend/RouterOptions instances are never affected.
std::vector<std::string> default_router_candidates() {
  RouterOptions defaults;
  const char* env = std::getenv("MBQ_ROUTER_CANDIDATES");
  if (env == nullptr || *env == '\0') return defaults.candidates;
  std::vector<std::string> names;
  std::string token;
  std::istringstream in(env);
  while (std::getline(in, token, ','))
    if (!token.empty()) names.push_back(token);
  MBQ_REQUIRE(!names.empty(),
              "MBQ_ROUTER_CANDIDATES='" << env
                                        << "' names no candidate backends");
  return names;
}

}  // namespace

BackendRegistry::BackendRegistry() {
  factories_["statevector"] = [] {
    return std::make_shared<StatevectorBackend>();
  };
  factories_["mbqc"] = [] {
    return std::make_shared<MbqcBackend>(core::CorrectionMode::Quantum);
  };
  factories_["mbqc-classical"] = [] {
    return std::make_shared<MbqcBackend>(
        core::CorrectionMode::ClassicalPostProcess);
  };
  factories_["clifford"] = [] { return std::make_shared<CliffordBackend>(); };
  factories_["zx"] = [] { return std::make_shared<ZxTensorBackend>(); };
  // Meta-backends: cost routing over the adapters above (the factories
  // run at create() time, when the built-ins are all registered).
  // The env override resolves at create() time, so a test (or a child
  // worker process inheriting the variable) always sees the current
  // value, not whatever held when the singleton was first built.
  factories_["router"] = [] {
    RouterOptions options;
    options.candidates = default_router_candidates();
    return std::make_shared<RouterBackend>(options);
  };
  factories_["router-checked"] = [] {
    RouterOptions options;
    options.candidates = default_router_candidates();
    options.cross_check = true;
    return std::make_shared<RouterBackend>(options);
  };
  builtin_names_.reserve(factories_.size());
  for (const auto& [name, factory] : factories_)
    builtin_names_.push_back(name);
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::add(const std::string& name, Factory factory) {
  MBQ_REQUIRE(factory != nullptr, "null backend factory for '" << name << "'");
  const std::lock_guard<std::mutex> lock(mutex_);
  MBQ_REQUIRE(factories_.find(name) == factories_.end(),
              "backend '" << name << "' is already registered");
  factories_[name] = std::move(factory);
}

bool BackendRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return factories_.find(name) != factories_.end();
}

bool BackendRegistry::is_builtin(const std::string& name) const {
  // builtin_names_ is immutable after the constructor: no lock needed.
  return std::find(builtin_names_.begin(), builtin_names_.end(), name) !=
         builtin_names_.end();
}

std::shared_ptr<Backend> BackendRegistry::create(
    const std::string& name) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::ostringstream known;
    for (const auto& n : names()) known << " '" << n << "'";
    MBQ_REQUIRE(false, "unknown backend '" << name << "'; registered:"
                                           << known.str());
  }
  auto backend = factory();
  MBQ_REQUIRE(backend != nullptr,
              "factory for backend '" << name << "' returned null");
  return backend;
}

std::vector<std::string> BackendRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iterates in sorted key order
}

}  // namespace mbq::api
