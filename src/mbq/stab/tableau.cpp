#include "mbq/stab/tableau.h"

#include <algorithm>
#include <bit>

#include "mbq/common/error.h"
#include "mbq/graph/graph.h"

namespace mbq {

Tableau::Tableau(int n) : n_(n) {
  MBQ_REQUIRE(n >= 1 && n <= 1 << 16, "qubit count out of range: " << n);
  const std::size_t rows = 2 * static_cast<std::size_t>(n);
  x_.assign(rows * words(), 0);
  z_.assign(rows * words(), 0);
  r_.assign(rows, 0);
  for (int i = 0; i < n; ++i) {
    set(x_, i, i, true);       // destabilizer i = X_i
    set(z_, n + i, i, true);   // stabilizer  i = Z_i
  }
}

Tableau Tableau::graph_state(const Graph& g) {
  Tableau t(g.num_vertices());
  for (int q = 0; q < g.num_vertices(); ++q) t.apply_h(q);
  for (const Edge& e : g.edges()) t.apply_cz(e.u, e.v);
  return t;
}

bool Tableau::get(const std::vector<std::uint64_t>& m, int row, int col) const {
  return (m[static_cast<std::size_t>(row) * words() + col / 64] >>
          (col % 64)) & 1ULL;
}

void Tableau::set(std::vector<std::uint64_t>& m, int row, int col, bool v) {
  auto& w = m[static_cast<std::size_t>(row) * words() + col / 64];
  const std::uint64_t bit = 1ULL << (col % 64);
  if (v) w |= bit;
  else w &= ~bit;
}

void Tableau::apply_h(int q) {
  MBQ_REQUIRE(q >= 0 && q < n_, "qubit out of range " << q);
  for (int row = 0; row < 2 * n_; ++row) {
    const bool xb = get(x_, row, q);
    const bool zb = get(z_, row, q);
    r_[row] ^= static_cast<std::uint8_t>(xb && zb);
    set(x_, row, q, zb);
    set(z_, row, q, xb);
  }
}

void Tableau::apply_s(int q) {
  MBQ_REQUIRE(q >= 0 && q < n_, "qubit out of range " << q);
  for (int row = 0; row < 2 * n_; ++row) {
    const bool xb = get(x_, row, q);
    const bool zb = get(z_, row, q);
    r_[row] ^= static_cast<std::uint8_t>(xb && zb);
    set(z_, row, q, xb != zb);
  }
}

void Tableau::apply_sdg(int q) {
  apply_s(q);
  apply_s(q);
  apply_s(q);
}

void Tableau::apply_x(int q) {
  MBQ_REQUIRE(q >= 0 && q < n_, "qubit out of range " << q);
  for (int row = 0; row < 2 * n_; ++row)
    r_[row] ^= static_cast<std::uint8_t>(get(z_, row, q));
}

void Tableau::apply_z(int q) {
  MBQ_REQUIRE(q >= 0 && q < n_, "qubit out of range " << q);
  for (int row = 0; row < 2 * n_; ++row)
    r_[row] ^= static_cast<std::uint8_t>(get(x_, row, q));
}

void Tableau::apply_y(int q) {
  apply_z(q);
  apply_x(q);
}

void Tableau::apply_cx(int control, int target) {
  MBQ_REQUIRE(control != target && control >= 0 && target >= 0 &&
                  control < n_ && target < n_,
              "bad CX qubits " << control << "," << target);
  for (int row = 0; row < 2 * n_; ++row) {
    const bool xc = get(x_, row, control);
    const bool zc = get(z_, row, control);
    const bool xt = get(x_, row, target);
    const bool zt = get(z_, row, target);
    r_[row] ^= static_cast<std::uint8_t>(xc && zt && (xt == zc));
    set(x_, row, target, xt != xc);
    set(z_, row, control, zc != zt);
  }
}

void Tableau::apply_cz(int a, int b) {
  apply_h(b);
  apply_cx(a, b);
  apply_h(b);
}

void Tableau::apply_swap(int a, int b) {
  apply_cx(a, b);
  apply_cx(b, a);
  apply_cx(a, b);
}

void Tableau::rowsum_into(std::vector<std::uint64_t>& xs,
                          std::vector<std::uint64_t>& zs, int& r,
                          int i) const {
  // Multiply the accumulator Pauli (xs, zs, sign bit in r mod 4 exponent)
  // by row i; exponent arithmetic mod 4 as in CHP.
  int twos = 2 * r + 2 * r_[i];
  int plus = 0, minus = 0;
  const std::size_t base = static_cast<std::size_t>(i) * words();
  for (int w = 0; w < words(); ++w) {
    const std::uint64_t a = x_[base + w];  // row i (left factor)
    const std::uint64_t b = z_[base + w];
    const std::uint64_t c = xs[w];         // accumulator (right factor)
    const std::uint64_t d = zs[w];
    const std::uint64_t gp = (a & b & d & ~c) | (a & ~b & d & c) |
                             (~a & b & c & ~d);
    const std::uint64_t gm = (a & b & c & ~d) | (a & ~b & d & ~c) |
                             (~a & b & c & d);
    plus += std::popcount(gp);
    minus += std::popcount(gm);
    xs[w] ^= a;
    zs[w] ^= b;
  }
  const int total = ((twos + plus - minus) % 4 + 4) % 4;
  // Products of commuting Paulis give total in {0, 2}.  Odd totals occur
  // when a destabilizer row is multiplied by its paired stabilizer during
  // measurement updates; the phase bit of destabilizer rows is
  // meaningless, so mapping {0,1}->+ and {2,3}->- is safe there.
  r = (total >> 1) & 1;
}

void Tableau::rowsum(int h, int i) {
  const std::size_t bh = static_cast<std::size_t>(h) * words();
  std::vector<std::uint64_t> xs(x_.begin() + bh, x_.begin() + bh + words());
  std::vector<std::uint64_t> zs(z_.begin() + bh, z_.begin() + bh + words());
  int r = r_[h];
  // rowsum multiplies row i into accumulator; note exponent includes both.
  int rr = r;
  // Reuse rowsum_into with accumulator seeded from row h but exponent
  // handled there (2*r + 2*r_i): pass r of row h.
  rr = r;
  rowsum_into(xs, zs, rr, i);
  std::copy(xs.begin(), xs.end(), x_.begin() + bh);
  std::copy(zs.begin(), zs.end(), z_.begin() + bh);
  r_[h] = static_cast<std::uint8_t>(rr);
}

bool Tableau::is_deterministic_z(int q) const {
  MBQ_REQUIRE(q >= 0 && q < n_, "qubit out of range " << q);
  for (int i = n_; i < 2 * n_; ++i)
    if (get(x_, i, q)) return false;
  return true;
}

int Tableau::measure_z_impl(int q, Rng& rng, int forced) {
  MBQ_REQUIRE(q >= 0 && q < n_, "qubit out of range " << q);
  MBQ_REQUIRE(forced >= -1 && forced <= 1, "forced must be -1/0/1");
  int p = -1;
  for (int i = n_; i < 2 * n_; ++i) {
    if (get(x_, i, q)) {
      p = i;
      break;
    }
  }
  if (p >= 0) {
    // Random outcome.
    const int outcome = forced == -1 ? (rng.coin() ? 1 : 0) : forced;
    for (int i = 0; i < 2 * n_; ++i)
      if (i != p && get(x_, i, q)) rowsum(i, p);
    // Destabilizer p-n := old stabilizer p; stabilizer p := (-1)^outcome Z_q.
    const std::size_t bp = static_cast<std::size_t>(p) * words();
    const std::size_t bd = static_cast<std::size_t>(p - n_) * words();
    std::copy(x_.begin() + bp, x_.begin() + bp + words(), x_.begin() + bd);
    std::copy(z_.begin() + bp, z_.begin() + bp + words(), z_.begin() + bd);
    r_[p - n_] = r_[p];
    std::fill(x_.begin() + bp, x_.begin() + bp + words(), 0ULL);
    std::fill(z_.begin() + bp, z_.begin() + bp + words(), 0ULL);
    set(z_, p, q, true);
    r_[p] = static_cast<std::uint8_t>(outcome);
    return outcome;
  }
  // Deterministic outcome: accumulate into scratch.
  std::vector<std::uint64_t> xs(words(), 0ULL);
  std::vector<std::uint64_t> zs(words(), 0ULL);
  int r = 0;
  for (int i = 0; i < n_; ++i)
    if (get(x_, i, q)) rowsum_into(xs, zs, r, i + n_);
  const int outcome = r;
  MBQ_REQUIRE(forced == -1 || forced == outcome,
              "forced outcome " << forced << " contradicts deterministic "
                                << outcome << " on qubit " << q);
  return outcome;
}

int Tableau::measure_z(int q, Rng& rng, int forced) {
  return measure_z_impl(q, rng, forced);
}

int Tableau::measure_x(int q, Rng& rng, int forced) {
  apply_h(q);
  const int m = measure_z_impl(q, rng, forced);
  apply_h(q);
  return m;
}

int Tableau::measure_y(int q, Rng& rng, int forced) {
  // Y basis: measure Z after rotating Y -> Z with Sdg then H.
  apply_sdg(q);
  apply_h(q);
  const int m = measure_z_impl(q, rng, forced);
  apply_h(q);
  apply_s(q);
  return m;
}

int Tableau::expectation(const PauliString& p) const {
  MBQ_REQUIRE(p.num_qubits() == n_,
              "Pauli width " << p.num_qubits() << " != " << n_);
  // P anticommutes with some stabilizer  =>  <P> = 0.
  // Otherwise P = ± product of stabilizers; find the sign using the
  // destabilizer pairing: stabilizer i participates iff destabilizer i
  // anticommutes with P.
  auto row_pauli = [&](int row) {
    std::uint64_t xm = 0, zm = 0;
    for (int qq = 0; qq < n_ && qq < 64; ++qq) {
      if (get(x_, row, qq)) xm |= 1ULL << qq;
      if (get(z_, row, qq)) zm |= 1ULL << qq;
    }
    return PauliString(xm, zm, std::min(n_, 64));
  };
  MBQ_REQUIRE(n_ <= 64,
              "expectation() supports up to 64 qubits; use measure_* beyond");
  const PauliString target(p.x_mask(), p.z_mask(), n_);
  for (int i = n_; i < 2 * n_; ++i)
    if (!row_pauli(i).commutes_with(target)) return 0;

  std::vector<std::uint64_t> xs(words(), 0ULL);
  std::vector<std::uint64_t> zs(words(), 0ULL);
  int r = 0;
  for (int i = 0; i < n_; ++i)
    if (!row_pauli(i).commutes_with(target)) rowsum_into(xs, zs, r, i + n_);
  // The accumulated Pauli must equal P as a tensor of X/Z (up to Y phase
  // bookkeeping shared by both sides).
  std::uint64_t xm = 0, zm = 0;
  for (int qq = 0; qq < n_; ++qq) {
    if ((xs[qq / 64] >> (qq % 64)) & 1ULL) xm |= 1ULL << qq;
    if ((zs[qq / 64] >> (qq % 64)) & 1ULL) zm |= 1ULL << qq;
  }
  MBQ_REQUIRE(xm == p.x_mask() && zm == p.z_mask(),
              "Pauli " << p.str() << " is not in the stabilizer group");
  return r ? -1 : +1;
}

int Tableau::expectation_zs(const std::vector<int>& qubits) const {
  std::vector<std::uint64_t> zmask(words(), 0ULL);
  for (int q : qubits) {
    MBQ_REQUIRE(q >= 0 && q < n_, "qubit out of range: " << q);
    zmask[q / 64] ^= 1ULL << (q % 64);  // repeated qubits cancel (Z^2 = I)
  }
  auto anticommutes_with_target = [&](int row) {
    // Z_S anticommutes with row iff parity(x_row & zmask) is odd.
    int par = 0;
    const std::size_t base = static_cast<std::size_t>(row) * words();
    for (int w = 0; w < words(); ++w)
      par ^= std::popcount(x_[base + w] & zmask[w]) & 1;
    return par == 1;
  };
  for (int i = n_; i < 2 * n_; ++i)
    if (anticommutes_with_target(i)) return 0;

  std::vector<std::uint64_t> xs(words(), 0ULL);
  std::vector<std::uint64_t> zs(words(), 0ULL);
  int r = 0;
  for (int i = 0; i < n_; ++i)
    if (anticommutes_with_target(i)) rowsum_into(xs, zs, r, i + n_);
  for (int w = 0; w < words(); ++w) {
    MBQ_REQUIRE(xs[w] == 0 && zs[w] == zmask[w],
                "Z product is not in the stabilizer group");
  }
  return r ? -1 : +1;
}

std::vector<std::string> Tableau::canonical_stabilizers() const {
  // Gaussian elimination over the stabilizer rows (a copy of the tableau
  // so measurement state is untouched).
  Tableau t = *this;
  int row = t.n_;
  auto pivot_col = [&](int r0, int c, bool use_x) -> int {
    for (int i = r0; i < 2 * t.n_; ++i)
      if (use_x ? t.get(t.x_, i, c) : t.get(t.z_, i, c)) return i;
    return -1;
  };
  auto swap_rows = [&](int a, int b) {
    if (a == b) return;
    const std::size_t ba = static_cast<std::size_t>(a) * t.words();
    const std::size_t bb = static_cast<std::size_t>(b) * t.words();
    for (int w = 0; w < t.words(); ++w) {
      std::swap(t.x_[ba + w], t.x_[bb + w]);
      std::swap(t.z_[ba + w], t.z_[bb + w]);
    }
    std::swap(t.r_[a], t.r_[b]);
  };
  // X part first, then Z part (standard canonical form).
  for (int c = 0; c < t.n_ && row < 2 * t.n_; ++c) {
    const int p = pivot_col(row, c, true);
    if (p < 0) continue;
    swap_rows(row, p);
    for (int i = t.n_; i < 2 * t.n_; ++i)
      if (i != row && t.get(t.x_, i, c)) t.rowsum(i, row);
    ++row;
  }
  for (int c = 0; c < t.n_ && row < 2 * t.n_; ++c) {
    const int p = pivot_col(row, c, false);
    if (p < 0) continue;
    swap_rows(row, p);
    for (int i = t.n_; i < 2 * t.n_; ++i)
      if (i != row && !t.get(t.x_, i, c) && t.get(t.z_, i, c))
        t.rowsum(i, row);
    ++row;
  }
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(t.n_));
  for (int i = t.n_; i < 2 * t.n_; ++i) out.push_back(t.stabilizer_row(i - t.n_));
  std::sort(out.begin(), out.end());
  return out;
}

std::string Tableau::stabilizer_row(int i) const {
  MBQ_REQUIRE(i >= 0 && i < n_, "stabilizer index out of range " << i);
  const int row = n_ + i;
  std::string s;
  s.push_back(r_[row] ? '-' : '+');
  for (int q = 0; q < n_; ++q) {
    const bool xb = get(x_, row, q);
    const bool zb = get(z_, row, q);
    s.push_back(xb && zb ? 'Y' : xb ? 'X' : zb ? 'Z' : 'I');
  }
  return s;
}

}  // namespace mbq
