#pragma once
// Aaronson-Gottesman stabilizer tableau simulator (CHP).
//
// Used where statevectors cannot reach: preparing and checking the MBQC
// resource graph states at hundreds-to-thousands of qubits, and executing
// measurement patterns at Clifford parameter points (gamma, beta multiples
// of pi/2).  Rows are bit-packed; phase updates use the word-parallel
// formulation of the CHP "rowsum" exponent arithmetic.

#include <cstdint>
#include <string>
#include <vector>

#include "mbq/common/rng.h"
#include "mbq/sim/pauli.h"

namespace mbq {
class Graph;

class Tableau {
 public:
  /// |0...0> on n qubits.
  explicit Tableau(int n);

  /// Graph state |G>: H on all, then CZ per edge.
  static Tableau graph_state(const Graph& g);

  int num_qubits() const noexcept { return n_; }

  void apply_h(int q);
  void apply_s(int q);
  void apply_sdg(int q);
  void apply_x(int q);
  void apply_y(int q);
  void apply_z(int q);
  void apply_cx(int control, int target);
  void apply_cz(int a, int b);
  void apply_swap(int a, int b);

  /// True if a Z measurement of q has a deterministic outcome.
  bool is_deterministic_z(int q) const;

  /// Measure qubit q in the Z basis.  forced in {-1,0,1}; forcing a
  /// deterministic measurement to the wrong value throws.
  int measure_z(int q, Rng& rng, int forced = -1);
  /// Measure in the X basis (H-conjugated Z measurement).
  int measure_x(int q, Rng& rng, int forced = -1);
  /// Measure in the Y basis.
  int measure_y(int q, Rng& rng, int forced = -1);

  /// Expectation of a Pauli string: +1 / -1 if ±P stabilizes the state,
  /// 0 if P anticommutes with some stabilizer.  Limited to n <= 64 by the
  /// PauliString representation.
  int expectation(const PauliString& p) const;

  /// Expectation of prod_{q in qubits} Z_q, for any register width.
  int expectation_zs(const std::vector<int>& qubits) const;

  /// Canonical (row-reduced) stabilizer generators with signs; two
  /// tableaus describe the same state iff these are equal.
  std::vector<std::string> canonical_stabilizers() const;

  /// Stabilizer row `i` (0..n-1) as "+XZY..." text, for debugging.
  std::string stabilizer_row(int i) const;

 private:
  int words() const noexcept { return (n_ + 63) / 64; }
  bool get(const std::vector<std::uint64_t>& m, int row, int col) const;
  void set(std::vector<std::uint64_t>& m, int row, int col, bool v);
  void rowsum(int h, int i);                 // row h *= row i
  void rowsum_into(std::vector<std::uint64_t>& xs,
                   std::vector<std::uint64_t>& zs, int& r, int i) const;
  int measure_z_impl(int q, Rng& rng, int forced);

  int n_ = 0;
  // Row r, word w at index r*words()+w.  Rows 0..n-1 destabilizers,
  // n..2n-1 stabilizers.
  std::vector<std::uint64_t> x_;
  std::vector<std::uint64_t> z_;
  std::vector<std::uint8_t> r_;  // phase bit per row (1 == minus sign)
};

}  // namespace mbq
