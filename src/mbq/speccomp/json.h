#pragma once
// JSON text codec for WorkloadSpec — the human-readable sibling of the
// binary codec in api/workload_spec.h, so non-C++ clients (and the
// future HTTP edge) can author workloads as text.
//
// Exactness contract, mirroring the binary codec's: parse(emit(spec))
// reproduces spec bit-exactly.  Finite reals are emitted with 17
// significant digits (every finite double round-trips through that text
// bit-exactly, including -0.0); non-finite values are emitted as IEEE-754
// bit-pattern strings ("0x7ff0000000000000").  On input, every real
// accepts either form — a JSON number or a "0x<16 hex digits>" bit
// string — so hand-authored text stays natural while machine-generated
// text can be bit-precise.  Emission is canonical (fixed field order,
// fixed formatting): JSON -> binary -> JSON is byte-stable.
//
// The parser is the same strict recursive-descent discipline as
// bench/report.cpp: no dependency, malformed input throws Error with a
// byte offset, trailing garbage rejected, unknown ansatz/gate/source
// names rejected with the known-name listing.  CustomCircuit specs do
// not serialize here either.

#include <string>

#include "mbq/api/workload_spec.h"

namespace mbq::speccomp {

/// Canonical JSON text for a serializable spec (ends with '\n').
/// Throws Error for CustomCircuit specs.
std::string spec_to_json(const api::WorkloadSpec& spec);

/// Parse and validate; throws Error on malformed JSON, unknown fields'
/// values, or an inconsistent spec.  The result satisfies
/// spec_to_json(spec_from_json(text)) == spec_to_json-canonical form and
/// round-trips the binary codec bit-exactly.
api::WorkloadSpec spec_from_json(const std::string& text);

}  // namespace mbq::speccomp
