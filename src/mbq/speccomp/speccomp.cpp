#include "mbq/speccomp/speccomp.h"

#include <cstdlib>
#include <optional>
#include <sstream>
#include <utility>

#include "mbq/common/error.h"

namespace mbq::speccomp {

namespace {

// --- options -----------------------------------------------------------

SpecCompileOptions named_pass(std::string_view name) {
  SpecCompileOptions o = SpecCompileOptions::off();
  if (name == "canonicalize") {
    o.canonicalize = true;
  } else if (name == "peephole") {
    o.peephole = true;
  } else if (name == "fuse") {
    o.fuse = true;
  } else if (name == "schedule") {
    o.schedule = true;
  } else {
    throw Error("unknown spec-compiler pass '" + std::string(name) +
                "' (known passes: canonicalize, peephole, fuse, schedule; "
                "or use on/off/all)");
  }
  return o;
}

// --- param algebra -----------------------------------------------------

/// The expression is 0 for every angle assignment.
bool param_is_zero(const qaoa::Param& p) {
  if (p.source == qaoa::Param::Source::Constant)
    return p.offset + p.scale == 0.0;  // evaluate() returns offset + scale
  return p.scale == 0.0 && p.offset == 0.0;
}

/// a + b when the sum is still one affine expression over at most one
/// angle source; nullopt otherwise (e.g. gamma[0] + beta[0]).
std::optional<qaoa::Param> add_params(const qaoa::Param& a,
                                      const qaoa::Param& b) {
  using Source = qaoa::Param::Source;
  if (a.source == Source::Constant && b.source == Source::Constant)
    return qaoa::Param::constant((a.offset + a.scale) + (b.offset + b.scale));
  if (a.source == Source::Constant)
    return qaoa::Param{b.source, b.index, b.scale,
                       b.offset + (a.offset + a.scale)};
  if (b.source == Source::Constant)
    return qaoa::Param{a.source, a.index, a.scale,
                       a.offset + (b.offset + b.scale)};
  if (a.source == b.source && a.index == b.index)
    return qaoa::Param{a.source, a.index, a.scale + b.scale,
                       a.offset + b.offset};
  return std::nullopt;
}

// --- canonicalize ------------------------------------------------------

// Cost-term canonicalization.  CostHamiltonian::add_term already merges
// duplicate supports and keeps canonical (|S|, lex) order as a
// construction invariant, so the merge/order counters are defensive
// documentation — the real work is dropping exact-zero coefficients,
// which survive a `w` then `-w` add.  Dropping them is outcome-exact:
// they contribute +/-0.0 to every cost sum, and their measurement
// gadgets (angle 2*gamma*0 = 0) are skipped unconditionally by the
// pattern compilers.
PassStats pass_canonicalize(api::WorkloadSpec& spec) {
  PassStats st;
  st.pass = "canonicalize";
  st.enabled = true;
  const auto& terms = spec.cost.terms();
  std::int64_t zeros = 0;
  for (const auto& t : terms) zeros += t.coeff == 0.0;
  if (zeros == 0) return st;
  qaoa::CostHamiltonian cleaned(spec.cost.num_qubits(), spec.cost.constant());
  for (const auto& t : terms)
    if (t.coeff != 0.0) cleaned.add_term(t.support, t.coeff);
  st.terms_dropped = zeros;
  st.changed = true;
  spec.cost = std::move(cleaned);
  return st;
}

// --- peephole / fuse ---------------------------------------------------

/// Gates the DEFAULT pass may remove: diagonal rotations that are
/// identically I for every angle value AND whose pattern lowering is
/// already a no-op (the gadget compiler skips zero-angle YZ gadgets), so
/// removal cannot perturb the measurement tape.  Restricted to
/// Constant-source params: removing a zero gamma[k]/beta[k] reference
/// would relax the circuit's min_gamma/min_beta validation floors, which
/// IS observable (an optimized workload would accept angle vectors the
/// unoptimized one rejects).
bool default_removable(const qaoa::ParamGate& g) {
  if (g.kind != GateKind::Rz && g.kind != GateKind::PhaseGadget) return false;
  return g.angle.source == qaoa::Param::Source::Constant &&
         param_is_zero(g.angle);
}

/// Additionally removable under the opt-in fuse pass: any identically-
/// zero rotation, including Rx (whose J(0)∘J(0) lowering is a real
/// teleport, so removal changes the measurement tape — distribution-
/// preserving, not stream-preserving).
bool fuse_removable(const qaoa::ParamGate& g) {
  if (g.kind != GateKind::Rz && g.kind != GateKind::Rx &&
      g.kind != GateKind::PhaseGadget)
    return false;
  return param_is_zero(g.angle);
}

bool fusable_pair(const qaoa::ParamGate& a, const qaoa::ParamGate& b) {
  if (a.kind != b.kind) return false;
  if (a.kind != GateKind::Rz && a.kind != GateKind::Rx &&
      a.kind != GateKind::PhaseGadget)
    return false;
  return a.qubits == b.qubits;  // same wire / identical gadget support
}

PassStats peephole_circuit(api::WorkloadSpec& spec, bool fuse) {
  PassStats st;
  st.pass = fuse ? "fuse" : "peephole";
  st.enabled = true;
  if (spec.kind != api::AnsatzKind::ParamCircuit) return st;

  std::vector<qaoa::ParamGate> gates(spec.circuit->gates());
  std::vector<qaoa::ParamGate> out;
  out.reserve(gates.size());
  for (qaoa::ParamGate& g : gates) {
    if (fuse && !out.empty() && fusable_pair(out.back(), g)) {
      if (const auto sum = add_params(out.back().angle, g.angle)) {
        out.back().angle = *sum;
        ++st.gates_fused;
        if (fuse_removable(out.back())) {
          out.pop_back();
          ++st.gates_eliminated;
        }
        continue;
      }
    }
    if (fuse ? fuse_removable(g) : default_removable(g)) {
      ++st.gates_eliminated;
      continue;
    }
    out.push_back(std::move(g));
  }
  if (out.size() == spec.circuit->gates().size() && st.gates_fused == 0)
    return st;

  qaoa::ParamCircuit rebuilt(spec.circuit->num_qubits());
  for (qaoa::ParamGate& g : out) rebuilt.append(std::move(g));
  spec.circuit = std::make_shared<const qaoa::ParamCircuit>(std::move(rebuilt));
  st.changed = true;
  return st;
}

// --- schedule ----------------------------------------------------------

// Emit the prep-deferral hint and estimate its coverage: how many of the
// n initial |+> preps move past at least one emitted command.  The
// estimate walks the spec the way the compilers emit it (QAOA: phase
// gadgets in term order, then mixers; MIS: the H prefix touches wire q
// at position q; ParamCircuit: gate list order).
PassStats pass_schedule(const api::WorkloadSpec& spec,
                        mbqc::ScheduleHints& hints) {
  PassStats st;
  st.pass = "schedule";
  st.enabled = true;
  const int n = spec.cost.num_qubits();
  st.wires_total = n;
  switch (spec.kind) {
    case api::AnsatzKind::QaoaDiagonal: {
      const auto& terms = spec.cost.terms();
      // Wire q's first touch: the first phase gadget containing it, else
      // its own mixer (after every gadget and the mixers of lower wires).
      std::vector<std::int64_t> first(static_cast<std::size_t>(n), -1);
      for (std::size_t t = 0; t < terms.size(); ++t)
        for (int q : terms[t].support)
          if (first[static_cast<std::size_t>(q)] < 0)
            first[static_cast<std::size_t>(q)] =
                static_cast<std::int64_t>(t);
      for (int q = 0; q < n; ++q)
        if (first[static_cast<std::size_t>(q)] < 0)
          first[static_cast<std::size_t>(q)] =
              static_cast<std::int64_t>(terms.size()) + q;
      for (int q = 0; q < n; ++q)
        st.wires_deferrable += first[static_cast<std::size_t>(q)] > 0;
      break;
    }
    case api::AnsatzKind::MisConstrained:
      // compile_mis_qaoa prefixes H on every wire in index order: wire
      // q's first touch is command q.
      st.wires_deferrable = n > 0 ? n - 1 : 0;
      break;
    case api::AnsatzKind::ParamCircuit: {
      const auto& gates = spec.circuit->gates();
      std::vector<std::int64_t> first(static_cast<std::size_t>(n), -1);
      for (std::size_t i = 0; i < gates.size(); ++i)
        for (int q : gates[i].qubits)
          if (first[static_cast<std::size_t>(q)] < 0)
            first[static_cast<std::size_t>(q)] = static_cast<std::int64_t>(i);
      for (int q = 0; q < n; ++q) {
        const std::int64_t f = first[static_cast<std::size_t>(q)];
        // Untouched wires defer past the whole circuit (when it has any
        // gates at all).
        st.wires_deferrable += f > 0 || (f < 0 && !gates.empty());
      }
      break;
    }
    default:
      break;  // registered/custom kinds lower through their own builder
  }
  hints.defer_initial_preps = true;
  st.changed = true;
  return st;
}

}  // namespace

SpecCompileOptions SpecCompileOptions::parse(std::string_view text) {
  if (text.empty() || text == "on") return {};
  if (text == "off") return off();
  if (text == "all") return {true, true, true, true};
  SpecCompileOptions o = off();
  std::stringstream ss{std::string(text)};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const SpecCompileOptions p = named_pass(item);
    o.canonicalize |= p.canonicalize;
    o.peephole |= p.peephole;
    o.fuse |= p.fuse;
    o.schedule |= p.schedule;
  }
  return o;
}

SpecCompileOptions SpecCompileOptions::from_env() {
  const char* env = std::getenv("MBQ_SPEC_OPT");
  return env ? parse(env) : SpecCompileOptions{};
}

CompiledSpec compile_spec(const api::WorkloadSpec& spec,
                          const SpecCompileOptions& options) {
  spec.validate();
  CompiledSpec out;
  out.spec = spec;

  if (options.canonicalize) {
    out.stats.push_back(pass_canonicalize(out.spec));
  } else {
    out.stats.push_back({.pass = "canonicalize"});
  }
  if (options.peephole) {
    out.stats.push_back(peephole_circuit(out.spec, /*fuse=*/false));
  } else {
    out.stats.push_back({.pass = "peephole"});
  }
  if (options.fuse) {
    out.stats.push_back(peephole_circuit(out.spec, /*fuse=*/true));
  } else {
    out.stats.push_back({.pass = "fuse"});
  }
  if (options.schedule) {
    out.stats.push_back(pass_schedule(out.spec, out.hints));
  } else {
    out.stats.push_back({.pass = "schedule"});
  }

  for (const PassStats& s : out.stats) out.changed |= s.changed;
  out.spec.validate();
  return out;
}

CompiledSpec compile_spec(const api::WorkloadSpec& spec) {
  return compile_spec(spec, SpecCompileOptions::from_env());
}

}  // namespace mbq::speccomp
