#include "mbq/speccomp/json.h"

#include <cmath>
#include <sstream>

#include "mbq/api/ansatz_registry.h"
#include "mbq/common/error.h"
#include "mbq/common/json.h"

namespace mbq::speccomp {

namespace {

using json::field;
using json::json_escape;
using json::JsonArray;
using json::JsonObject;
using json::JsonValue;
using json::read_int;
using json::read_real;

/// Finite reals as exact 17-digit numbers (readable, bit-exact);
/// non-finite as IEEE-754 bit strings.  read_real accepts both plus
/// explicit "0x..." bit patterns, so emission stays canonical while
/// input stays lenient.
std::string json_real(real v) {
  if (std::isfinite(v)) return json::json_double(v);
  return json::json_real_bits(v);
}

const char* ansatz_json_name(api::AnsatzKind k) {
  switch (k) {
    case api::AnsatzKind::QaoaDiagonal: return "qaoa";
    case api::AnsatzKind::MisConstrained: return "mis";
    case api::AnsatzKind::ParamCircuit: return "param-circuit";
    case api::AnsatzKind::Registered: return "registered";
    case api::AnsatzKind::CustomCircuit: break;
  }
  throw Error("custom-circuit specs do not serialize");
}

api::AnsatzKind ansatz_from_json_name(const std::string& s) {
  if (s == "qaoa") return api::AnsatzKind::QaoaDiagonal;
  if (s == "mis") return api::AnsatzKind::MisConstrained;
  if (s == "param-circuit") return api::AnsatzKind::ParamCircuit;
  if (s == "registered") return api::AnsatzKind::Registered;
  throw Error("JSON spec: unknown ansatz kind '" + s + "' (known kinds: " +
              api::ansatz_kind_listing() + "; custom does not serialize)");
}

const char* gate_json_name(GateKind k) {
  switch (k) {
    case GateKind::H: return "h";
    case GateKind::X: return "x";
    case GateKind::Y: return "y";
    case GateKind::Z: return "z";
    case GateKind::S: return "s";
    case GateKind::Sdg: return "sdg";
    case GateKind::T: return "t";
    case GateKind::Tdg: return "tdg";
    case GateKind::Rx: return "rx";
    case GateKind::Rz: return "rz";
    case GateKind::Cz: return "cz";
    case GateKind::Cx: return "cx";
    case GateKind::PhaseGadget: return "phase-gadget";
    case GateKind::ControlledExpX: return "controlled-exp-x";
  }
  throw Error("JSON spec: unencodable gate kind");
}

GateKind gate_from_json_name(const std::string& s) {
  static const std::pair<const char*, GateKind> kNames[] = {
      {"h", GateKind::H},     {"x", GateKind::X},
      {"y", GateKind::Y},     {"z", GateKind::Z},
      {"s", GateKind::S},     {"sdg", GateKind::Sdg},
      {"t", GateKind::T},     {"tdg", GateKind::Tdg},
      {"rx", GateKind::Rx},   {"rz", GateKind::Rz},
      {"cz", GateKind::Cz},   {"cx", GateKind::Cx},
      {"phase-gadget", GateKind::PhaseGadget},
      {"controlled-exp-x", GateKind::ControlledExpX},
  };
  for (const auto& [name, kind] : kNames)
    if (s == name) return kind;
  std::ostringstream os;
  os << "JSON spec: unknown gate kind '" << s << "' (known:";
  for (const auto& [name, kind] : kNames) os << " " << name;
  os << ")";
  throw Error(os.str());
}

const char* source_json_name(qaoa::Param::Source s) {
  switch (s) {
    case qaoa::Param::Source::Constant: return "constant";
    case qaoa::Param::Source::Gamma: return "gamma";
    case qaoa::Param::Source::Beta: return "beta";
  }
  throw Error("JSON spec: unencodable param source");
}

qaoa::Param::Source source_from_json_name(const std::string& s) {
  if (s == "constant") return qaoa::Param::Source::Constant;
  if (s == "gamma") return qaoa::Param::Source::Gamma;
  if (s == "beta") return qaoa::Param::Source::Beta;
  throw Error("JSON spec: unknown param source '" + s +
              "' (known: constant, gamma, beta)");
}

void emit_int_array(std::ostringstream& os, const std::vector<int>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? ", " : "") << v[i];
  os << "]";
}

void emit_real_array(std::ostringstream& os, const std::vector<real>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? ", " : "") << json_real(v[i]);
  os << "]";
}

std::vector<int> read_int_array(const JsonValue& v) {
  std::vector<int> out;
  for (const JsonValue& x : v.array()) out.push_back(read_int(x));
  return out;
}

std::vector<real> read_real_array(const JsonValue& v) {
  std::vector<real> out;
  for (const JsonValue& x : v.array()) out.push_back(read_real(x));
  return out;
}

}  // namespace

std::string spec_to_json(const api::WorkloadSpec& spec) {
  MBQ_REQUIRE(spec.serializable(),
              "custom-circuit workloads hold an arbitrary CircuitBuilder "
              "closure that cannot be serialized");
  spec.validate();
  std::ostringstream os;
  os << "{\n";
  os << "  \"mbq_spec\": 1,\n";
  os << "  \"kind\": \"" << ansatz_json_name(spec.kind) << "\",\n";
  os << "  \"linear_style\": \""
     << (spec.linear_style == core::LinearTermStyle::FusedIntoMixer
             ? "fused-into-mixer"
             : "gadget")
     << "\",\n";
  os << "  \"max_wire_degree\": " << spec.max_wire_degree << ",\n";
  os << "  \"entangler_noise\": " << json_real(spec.entangler_noise) << ",\n";
  os << "  \"precision\": \"" << precision_name(spec.precision) << "\",\n";
  os << "  \"cost\": {\n";
  os << "    \"num_qubits\": " << spec.cost.num_qubits() << ",\n";
  os << "    \"constant\": " << json_real(spec.cost.constant()) << ",\n";
  os << "    \"terms\": [";
  const auto& terms = spec.cost.terms();
  for (std::size_t i = 0; i < terms.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    os << "      {\"coeff\": " << json_real(terms[i].coeff)
       << ", \"support\": ";
    emit_int_array(os, terms[i].support);
    os << "}";
  }
  os << (terms.empty() ? "]\n" : "\n    ]\n");
  os << "  }";
  switch (spec.kind) {
    case api::AnsatzKind::QaoaDiagonal:
      break;
    case api::AnsatzKind::MisConstrained: {
      os << ",\n  \"graph\": {\n";
      os << "    \"num_vertices\": " << spec.graph->num_vertices() << ",\n";
      os << "    \"edges\": [";
      const auto& edges = spec.graph->edges();
      for (std::size_t i = 0; i < edges.size(); ++i)
        os << (i ? ", " : "") << "[" << edges[i].u << ", " << edges[i].v
           << "]";
      os << "]\n  },\n";
      os << "  \"vertex_weights\": ";
      emit_real_array(os, spec.vertex_weights);
      break;
    }
    case api::AnsatzKind::ParamCircuit: {
      os << ",\n  \"circuit\": {\n";
      os << "    \"num_qubits\": " << spec.circuit->num_qubits() << ",\n";
      os << "    \"gates\": [";
      const auto& gates = spec.circuit->gates();
      for (std::size_t i = 0; i < gates.size(); ++i) {
        const qaoa::ParamGate& g = gates[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "      {\"kind\": \"" << gate_json_name(g.kind)
           << "\", \"qubits\": ";
        emit_int_array(os, g.qubits);
        os << ", \"angle\": {\"source\": \""
           << source_json_name(g.angle.source)
           << "\", \"index\": " << g.angle.index
           << ", \"scale\": " << json_real(g.angle.scale)
           << ", \"offset\": " << json_real(g.angle.offset) << "}"
           << ", \"ctrl_value\": " << g.ctrl_value << "}";
      }
      os << (gates.empty() ? "]\n" : "\n    ]\n");
      os << "  }";
      break;
    }
    case api::AnsatzKind::Registered: {
      os << ",\n  \"registered\": {\n";
      os << "    \"name\": \"" << json_escape(spec.registered_name)
         << "\",\n";
      os << "    \"ints\": ";
      emit_int_array(os, spec.registered_ints);
      os << ",\n    \"reals\": ";
      emit_real_array(os, spec.registered_reals);
      os << "\n  }";
      break;
    }
    case api::AnsatzKind::CustomCircuit:
      break;  // unreachable: guarded above
  }
  os << "\n}\n";
  return os.str();
}

api::WorkloadSpec spec_from_json(const std::string& text) {
  const JsonValue root = json::parse_json(text);
  const JsonObject& obj = root.object();
  MBQ_REQUIRE(json::read_u64(field(obj, "mbq_spec")) == 1,
              "JSON spec: unsupported format version");

  api::WorkloadSpec spec;
  spec.kind = ansatz_from_json_name(field(obj, "kind").str());
  // The workload knobs are optional on input (defaults match a freshly
  // constructed WorkloadSpec); canonical output always emits them.
  if (const auto it = obj.find("linear_style"); it != obj.end()) {
    const std::string& style = it->second.str();
    if (style == "gadget") {
      spec.linear_style = core::LinearTermStyle::Gadget;
    } else if (style == "fused-into-mixer") {
      spec.linear_style = core::LinearTermStyle::FusedIntoMixer;
    } else {
      throw Error("JSON spec: unknown linear_style '" + style +
                  "' (known: gadget, fused-into-mixer)");
    }
  }
  if (const auto it = obj.find("max_wire_degree"); it != obj.end())
    spec.max_wire_degree = read_int(it->second);
  if (const auto it = obj.find("entangler_noise"); it != obj.end())
    spec.entangler_noise = read_real(it->second);
  if (const auto it = obj.find("precision"); it != obj.end())
    spec.precision = parse_precision(it->second.str().c_str());

  const JsonObject& cost = field(obj, "cost").object();
  qaoa::CostHamiltonian c(read_int(field(cost, "num_qubits")),
                          cost.count("constant")
                              ? read_real(field(cost, "constant"))
                              : 0.0);
  for (const JsonValue& item : field(cost, "terms").array()) {
    const JsonObject& t = item.object();
    c.add_term(read_int_array(field(t, "support")),
               read_real(field(t, "coeff")));
  }
  spec.cost = std::move(c);

  switch (spec.kind) {
    case api::AnsatzKind::QaoaDiagonal:
      break;
    case api::AnsatzKind::MisConstrained: {
      const JsonObject& gobj = field(obj, "graph").object();
      Graph g(read_int(field(gobj, "num_vertices")));
      for (const JsonValue& e : field(gobj, "edges").array()) {
        const JsonArray& pair = e.array();
        MBQ_REQUIRE(pair.size() == 2,
                    "JSON spec: an edge must be a [u, v] pair, got "
                        << pair.size() << " entries");
        g.add_edge(read_int(pair[0]), read_int(pair[1]));
      }
      spec.graph = std::make_shared<const Graph>(std::move(g));
      spec.vertex_weights = read_real_array(field(obj, "vertex_weights"));
      break;
    }
    case api::AnsatzKind::ParamCircuit: {
      const JsonObject& cobj = field(obj, "circuit").object();
      qaoa::ParamCircuit pc(read_int(field(cobj, "num_qubits")));
      for (const JsonValue& item : field(cobj, "gates").array()) {
        const JsonObject& gj = item.object();
        qaoa::ParamGate g;
        g.kind = gate_from_json_name(field(gj, "kind").str());
        g.qubits = read_int_array(field(gj, "qubits"));
        const JsonObject& aj = field(gj, "angle").object();
        g.angle.source = source_from_json_name(field(aj, "source").str());
        g.angle.index = read_int(field(aj, "index"));
        g.angle.scale = read_real(field(aj, "scale"));
        g.angle.offset = read_real(field(aj, "offset"));
        g.ctrl_value = read_int(field(gj, "ctrl_value"));
        pc.append(std::move(g));  // re-validates qubits, arity, index
      }
      spec.circuit =
          std::make_shared<const qaoa::ParamCircuit>(std::move(pc));
      break;
    }
    case api::AnsatzKind::Registered: {
      const JsonObject& robj = field(obj, "registered").object();
      spec.registered_name = field(robj, "name").str();
      spec.registered_ints = read_int_array(field(robj, "ints"));
      spec.registered_reals = read_real_array(field(robj, "reals"));
      break;
    }
    case api::AnsatzKind::CustomCircuit:
      break;  // unreachable: ansatz_from_json_name rejects "custom"
  }
  spec.validate();
  return spec;
}

}  // namespace mbq::speccomp
