#pragma once
// The spec-level optimizing compiler: passes over the WorkloadSpec IR,
// run once per spec between validation and backend lowering.
//
// Passes (in pipeline order):
//
//   canonicalize — cost-monomial canonicalization: verifies the
//       construction invariants (canonical support order, merged
//       duplicates — see qaoa::CostHamiltonian::add_term) and drops
//       terms whose coefficient is exactly zero (a w then -w add leaves
//       one behind).  Zero terms cost a YZ-gadget ancilla per layer in
//       the measurement pattern and a term visit per cost evaluation.
//   peephole — ParamCircuit dead-gate elimination: removes diagonal
//       rotations (Rz, PhaseGadget) whose affine Param is identically
//       zero for every angle value.  Their gate-model action is exactly
//       I and their measurement-pattern lowering is already skipped by
//       the gadget compiler, so elimination is outcome-exact.
//   fuse (OPT-IN) — adjacent same-axis rotation fusion via the affine
//       Param algebra, plus elimination of the identity gates fusion
//       exposes (including Rx ≡ 0, whose J∘J lowering is not a pattern
//       no-op).  Fused angles evaluate to the same value only up to
//       floating-point re-association, so this pass preserves the
//       sampled DISTRIBUTION but not the exact outcome stream — which is
//       why it is excluded from the default set.
//   schedule (OPT-IN) — measurement-order scheduling hints: tells the
//       pattern emitters (core::compile_*, mbqc::pattern_from_circuit)
//       to defer each wire's initial |+> prep to its first entangling
//       use, bounding the executor's peak live width.  Deferral shifts
//       Born probabilities at the ulp level, so like fuse it is
//       distribution-preserving, not stream-preserving.
//
// The default pass set (canonicalize + peephole) is BIT-NEUTRAL by
// construction: every default transformation is mirrored by an
// unconditional rule in the lowering (zero-angle gadget skip,
// norm-based sampling), so MBQ_SPEC_OPT=on and =off produce exactly
// equal outcome streams and expectation values on every backend, at any
// thread/process count, and through a daemon.  tests/test_speccomp.cpp
// and the differential property sweeps enforce this.
//
// Wire-format stability: optimization is a per-host lowering detail.
// Workload/Session/shard/serve always encode, fingerprint, and cache
// the PRE-optimization spec bytes; a worker re-runs the (deterministic)
// passes on its own copy.  See api/workload.h (lowered()).

#include <string>
#include <string_view>
#include <vector>

#include "mbq/api/workload_spec.h"
#include "mbq/mbqc/schedule_hints.h"

namespace mbq::speccomp {

/// Which passes to run.  Defaults match MBQ_SPEC_OPT=on: the bit-neutral
/// set only.
struct SpecCompileOptions {
  bool canonicalize = true;
  bool peephole = true;
  bool fuse = false;      // opt-in: re-associates angle arithmetic
  bool schedule = false;  // opt-in: reorders preps / live-width bound

  static SpecCompileOptions off() { return {false, false, false, false}; }

  /// Parse an MBQ_SPEC_OPT value: "on" (default set), "off" (no passes),
  /// "all" (every pass including the opt-ins), or an explicit
  /// comma-separated pass list drawn from
  /// {canonicalize, peephole, fuse, schedule}.  Throws Error on unknown
  /// pass names.
  static SpecCompileOptions parse(std::string_view text);

  /// parse(getenv("MBQ_SPEC_OPT")), or the defaults when unset/empty.
  static SpecCompileOptions from_env();

  friend bool operator==(const SpecCompileOptions&,
                         const SpecCompileOptions&) = default;
};

/// Per-pass effect counters.  A disabled pass still appears (with
/// enabled = false and zero counters) so reports always show the whole
/// pipeline.
struct PassStats {
  std::string pass;
  bool enabled = false;
  bool changed = false;
  // canonicalize
  std::int64_t terms_dropped = 0;  // exact-zero coefficients removed
  std::int64_t terms_merged = 0;   // duplicate supports merged (invariant: 0)
  // peephole / fuse
  std::int64_t gates_eliminated = 0;
  std::int64_t gates_fused = 0;
  // schedule
  std::int64_t wires_deferrable = 0;  // preps that move past >= 1 command
  std::int64_t wires_total = 0;
};

/// The result of running the pipeline over one spec.
struct CompiledSpec {
  /// The optimized spec the backends lower from.  NOT the spec that goes
  /// on the wire — encode/fingerprint always use the original.
  api::WorkloadSpec spec;
  /// Scheduling hints for the pattern emitters (trivial unless the
  /// schedule pass ran).
  mbqc::ScheduleHints hints;
  std::vector<PassStats> stats;
  /// True when any pass changed the spec or emitted a non-trivial hint.
  bool changed = false;

  /// Sum of a counter across passes, for quick reporting.
  std::int64_t total(std::int64_t PassStats::* counter) const {
    std::int64_t sum = 0;
    for (const PassStats& s : stats) sum += s.*counter;
    return sum;
  }
};

/// Run the pipeline.  Deterministic: equal (spec, options) give equal
/// results in every process — the property that lets workers re-derive
/// the parent's lowering from the raw wire spec.  The input spec must be
/// validate()d; the output spec is, too.
CompiledSpec compile_spec(const api::WorkloadSpec& spec,
                          const SpecCompileOptions& options);

/// compile_spec with SpecCompileOptions::from_env().
CompiledSpec compile_spec(const api::WorkloadSpec& spec);

}  // namespace mbq::speccomp
