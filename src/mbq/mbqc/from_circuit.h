#pragma once
// Generic circuit -> measurement-pattern translation via J(alpha)
// decomposition.
//
// This is the "general method to translate gate-based algorithms into the
// MBQC model" that the paper's introduction contrasts against: every gate
// is decomposed into CZ and J(alpha) = H Rz(alpha), and each J consumes
// one fresh ancilla.  It is correct for arbitrary circuits but pays a
// significant resource overhead compared to the tailored compiler in
// mbq/core (bench_resources quantifies the gap, reproducing the paper's
// discussion).
//
// Byproduct bookkeeping: the translator tracks a symbolic Pauli frame
// (X^fx Z^fz per wire).  A J-step measures the wire in XY at angle
// -alpha with sign domain fx and outcome-flip domain fz; the recorded
// outcome becomes the new X frame and the old X frame becomes the Z
// frame.  CZ conjugates frames as CZ X_u = X_u Z_v CZ.

#include "mbq/circuit/circuit.h"
#include "mbq/mbqc/pattern.h"
#include "mbq/mbqc/schedule_hints.h"

namespace mbq::mbqc {

/// Translate a circuit into a pattern.
/// plus_inputs == true:  the pattern N-prepares the initial wires, i.e. it
///                       computes circuit|+...+> (the QAOA setting).
/// plus_inputs == false: initial wires are pattern inputs.
/// With hints.defer_initial_preps (and plus_inputs), each wire's |+> prep
/// is emitted at its first use instead of upfront, bounding the
/// executor's peak live width for circuits that touch wires late; input
/// wires (plus_inputs == false) always stay upfront.
Pattern pattern_from_circuit(const Circuit& c, bool plus_inputs,
                             const ScheduleHints& hints = {});

}  // namespace mbq::mbqc
