#pragma once
// Qubit-reuse scheduling.
//
// The paper (Sec. III-A, citing DeCross et al. [51]) notes that "the
// number of qubits required can be significantly reduced in some cases by
// reusing qubits after measurement".  This scheduler reorders pattern
// commands — preserving wire lifecycles and signal dependencies — to
// minimize the peak number of simultaneously-live qubits: measure as
// early as possible, prepare as late as possible.

#include "mbq/mbqc/pattern.h"

namespace mbq::mbqc {

/// Peak live-wire count when executing commands in the given order
/// (inputs are live from the start).
int peak_live_of(const Pattern& p);

struct Schedule {
  Pattern pattern;  // reordered, outcome ids renumbered consistently
  int peak_live = 0;
};

/// Greedy reuse schedule: among executable commands prefer measurements,
/// then corrections, then entanglers, then preparations.
Schedule schedule_for_reuse(const Pattern& p);

}  // namespace mbq::mbqc
