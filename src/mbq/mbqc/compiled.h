#pragma once
// Compile-once / run-many pattern execution — the MBQC sampling hot path.
//
// mbqc::run re-validates the pattern, re-walks the std::variant command
// list and rebuilds every measurement basis matrix on every shot.  For
// repeated-shot workloads (Session::sample, the measurement-driven QAOA
// outer loop) that per-pattern work is pure overhead: CompiledPattern
// pays it ONCE, lowering the command list into a flat op tape with
//   * wire ids renamed to dense slots in first-use order,
//   * signal domains flattened into index ranges over one shared pool,
//   * both sign variants ((-1)^s · angle) of every fixed-angle
//     measurement basis prebuilt — at runtime an adaptive measurement
//     is a branch-free table pick, not a Matrix construction,
//   * FUSED ops where the command stream allows it: a prep and its
//     trailing CZs collapse into one amplitude pass; the paper's gadget
//     blocks (N; E...; M of the fresh wire) become a single op that
//     never materializes the doubled register; runs of X/Z corrections
//     compose into one Pauli-product pass.
// A PatternExecutor then replays the tape against a single
// DynamicStatevector arena (reset in place between shots, so the
// steady-state shot loop allocates nothing) and draws from the Rng in
// exactly the order the interpreter does: outcome streams are
// bit-identical to mbqc::run_interpreted for equal seeds (the fused
// kernels evaluate the same sums in the same canonical order — see
// sim/dynamic_statevector).  Every amplitude sweep underneath runs on
// the runtime-dispatched SIMD kernel table (sim/collapse_kernels.h);
// the MBQ_SIMD flavor choice is bitwise invisible in every result.
//
// Angle-parametric execution keeps its thunk at a different layer: the
// pattern itself is compiled per angle point by core::compile_qaoa, and
// api::Session's prepare-cache stores the CompiledPattern per point.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mbq/common/rng.h"
#include "mbq/mbqc/pattern.h"
#include "mbq/mbqc/runner.h"
#include "mbq/sim/dynamic_statevector.h"

namespace mbq::mbqc {

/// A Pattern validated once and lowered to an immutable flat op tape.
/// Safe to share (by const reference / shared_ptr) across threads; all
/// mutable execution state lives in PatternExecutor.
class CompiledPattern {
 public:
  /// Validates `p` (throws Error on structural violations) and lowers it.
  explicit CompiledPattern(const Pattern& p);

  int num_measurements() const noexcept { return num_measurements_; }
  /// Distinct wires, i.e. the dense slot count.
  int num_slots() const noexcept { return num_slots_; }
  /// Ops on the tape (<= the source command count: fusion only merges).
  int num_ops() const noexcept { return static_cast<int>(tape_.size()); }
  /// Original output wire ids, in pattern order.
  const std::vector<int>& output_wires() const noexcept {
    return output_wires_;
  }

 private:
  friend class PatternExecutor;

  enum class OpKind : std::uint8_t {
    Prep,            // a = slot
    PrepCz,          // prep a + CZ against pairs[p_begin, p_end)
    PrepCzMeasure,   // as PrepCz, then measure a itself (gadget block)
    PrepCzTeleport,  // as PrepCz, then measure OTHER wire b (J step)
    Entangle,        // a, b
    CzGroup,         // CZs pairs[p_begin, p_end), one sign pass
    Measure,         // a, meas, s/t ranges
    PauliGroup,      // corrections pauli[p_begin, p_end), one pass
  };

  struct Op {
    OpKind kind;
    std::int32_t a = 0;      // slot: prep/measure wire; entangle lhs
    std::int32_t b = 0;      // entangle rhs slot
    std::int32_t meas = -1;  // measurement index == recorded signal id
    std::uint32_t s_begin = 0, s_end = 0;  // measure s-domain
    std::uint32_t t_begin = 0, t_end = 0;  // measure t-domain
    std::uint32_t p_begin = 0, p_end = 0;  // pair_pool_ / pauli_pool_ range
  };

  /// One source E command, in original order (the order matters for the
  /// entangler-noise rng stream, which draws per command).
  struct CzPair {
    std::int32_t a, b;
  };

  /// One source X/Z correction inside a PauliGroup.
  struct Correction {
    std::uint8_t is_z;
    std::int32_t slot;
    std::int32_t wire;  // original id, for pending_x/z reporting
    std::uint32_t d_begin, d_end;
  };

  int eval_signals(std::uint32_t begin, std::uint32_t end,
                   const std::vector<int>& outcomes) const noexcept {
    int acc = 0;
    for (std::uint32_t i = begin; i < end; ++i)
      acc ^= outcomes[static_cast<std::size_t>(signal_pool_[i])];
    return acc;
  }

  std::vector<Op> tape_;
  std::vector<signal_t> signal_pool_;  // all domains, flattened
  std::vector<CzPair> pair_pool_;      // PrepCz / CzGroup endpoints
  std::vector<Correction> pauli_pool_;
  std::vector<Matrix> basis_pos_;  // per measurement: s = 0 basis
  std::vector<Matrix> basis_neg_;  // per measurement: s = 1 basis
  std::vector<int> input_wires_;   // original ids, declaration order
  std::vector<int> input_slots_;
  std::vector<int> output_wires_;
  std::vector<int> output_slots_;
  int num_measurements_ = 0;
  int num_slots_ = 0;
};

/// Per-executor knobs: RunOptions minus `forced`, which is a per-run
/// argument (PatternExecutor::run_forced).
struct ExecOptions {
  /// Apply X/Z correction commands (true) or record the byproducts in
  /// RunResult::pending_x/pending_z instead.
  bool apply_corrections = true;
  /// Initial states for input wires, keyed by ORIGINAL wire id.
  std::unordered_map<int, std::pair<cplx, cplx>> input_states;
  /// Depolarizing noise after every E command (see RunOptions).
  /// Incompatible with run_forced.  Noisy runs take the per-command
  /// (unfused) execution path so the rng stream matches the interpreter
  /// draw for draw.
  real entangler_noise = 0.0;
  /// Statevector storage precision of the executor arena (see
  /// sim/dynamic_statevector.h).  F32 runs are deterministic within the
  /// precision but NOT bit-comparable to F64 runs.
  Precision precision = Precision::F64;

  /// Whole-struct comparison keeps thread_local_executor's staleness
  /// check honest when fields are added here.
  friend bool operator==(const ExecOptions&, const ExecOptions&) = default;
};

/// Replays a CompiledPattern's tape; owns the DynamicStatevector arena
/// and reuses it across runs.  One executor per thread — runs mutate the
/// arena.  The compiled pattern is held by shared_ptr so cached
/// executors can never outlive their tape.
class PatternExecutor {
 public:
  explicit PatternExecutor(std::shared_ptr<const CompiledPattern> compiled,
                           ExecOptions options = {});

  const CompiledPattern& compiled() const noexcept { return *compiled_; }
  const ExecOptions& options() const noexcept { return options_; }

  /// One Born-rule execution; rng consumption is bit-identical to
  /// run_interpreted on the source pattern.
  RunResult run(Rng& rng);

  /// One Born-rule execution followed by a computational-basis readout
  /// of the output register, sampled STRAIGHT from the arena — the
  /// gathered output_state copy (a per-shot allocation) never exists.
  /// Bit-identical to run() + the cumulative walk over output_state.
  /// The recorded measurement outcomes stay readable via last_outcomes()
  /// until the next execution.
  struct SampledShot {
    std::uint64_t x = 0;
    int peak_live = 0;
  };
  SampledShot run_sample(Rng& rng);

  /// Outcomes of the most recent execution (any entry point).
  const std::vector<int>& last_outcomes() const noexcept { return outcomes_; }

  /// Execute with every RAW outcome forced: measurement i takes
  /// forced[i] in {0, 1}.  Requires entangler_noise == 0 — noise draws
  /// would change branch statistics, the foot-gun run_all_branches used
  /// to leave open.
  RunResult run_forced(const std::vector<int>& forced);

  /// Forced outcomes packed as bits: measurement i takes bit i of
  /// `branch` (the run_all_branches enumeration order).
  RunResult run_forced(std::uint64_t branch);

 private:
  RunResult execute(Rng* rng, const int* forced, bool gather_output = true);

  std::shared_ptr<const CompiledPattern> compiled_;
  ExecOptions options_;
  DynamicStatevector dsv_;
  std::vector<int> outcomes_;
  std::vector<int> forced_bits_;  // scratch for the branch overload
  // Output-readout gather table, cached across shots: the output slots
  // are fixed per compiled pattern, so refreshing the table against the
  // final wire layout reuses its storage — this is what closed the last
  // per-shot heap allocation in run_sample (the old sample_in_order
  // overload built src/flip vectors on every call).
  DynamicStatevector::GatherTable gather_;
};

/// The executor for `compiled` cached on the CURRENT thread.  Parallel
/// shot loops call this per shot: each worker keeps one warm arena for
/// the pattern it is currently running, which is what makes
/// Session::sample allocation-free in steady state.  Swapping patterns —
/// or ExecOptions (e.g. a different entangler_noise) — on a thread
/// rebuilds its executor (cheap; the compiled tape is shared, only the
/// arena restarts cold).  input_states are not supported through this
/// cache (they would silently leak between callers); construct a
/// PatternExecutor directly for those.  Retention: each pool thread pins
/// ONE tape + arena (the pattern it last ran, ~2·16B·2^peak_live) until
/// a different pattern replaces it — bounded by thread count, but it
/// does outlive the owning Session.
PatternExecutor& thread_local_executor(
    const std::shared_ptr<const CompiledPattern>& compiled,
    const ExecOptions& options = {});

}  // namespace mbq::mbqc
