#include "mbq/mbqc/open_graph.h"

#include "mbq/common/error.h"

namespace mbq::mbqc {

OpenGraph open_graph_from_pattern(const Pattern& p) {
  p.validate();
  OpenGraph og;
  auto [g, wires] = p.entanglement_graph();
  og.g = std::move(g);
  og.wire_of_vertex = std::move(wires);
  for (std::size_t v = 0; v < og.wire_of_vertex.size(); ++v)
    og.vertex_of_wire[og.wire_of_vertex[v]] = static_cast<int>(v);

  const int n = og.g.num_vertices();
  og.plane.assign(n, MeasBasis::XY);
  og.angle.assign(n, 0.0);
  og.measured.assign(n, false);
  og.meas_position.assign(n, -1);

  int pos = 0;
  for (const Command& c : p.commands()) {
    if (const auto* m = std::get_if<CmdMeasure>(&c)) {
      const int v = og.vertex_of_wire.at(m->wire);
      og.plane[v] = m->plane;
      og.angle[v] = m->angle;
      og.measured[v] = true;
      og.meas_position[v] = pos++;
    }
  }
  for (int w : p.inputs()) og.input_vertices.push_back(og.vertex_of_wire.at(w));
  for (int w : p.outputs())
    og.output_vertices.push_back(og.vertex_of_wire.at(w));
  return og;
}

}  // namespace mbq::mbqc
