#pragma once
// Pattern standardization: rewrite into the N* E* M* C* normal form.
//
// Standard form separates the algorithm-independent part (resource-state
// preparation: all N then all E) from the adaptive part (measurements,
// then terminal corrections) — exactly the structure of Sec. II-B where
// "the graph state is usually independent of the algorithm".  The
// rewrite uses the measurement-calculus commutation rules: corrections
// commute right through entanglers (E X_i^s = X_i^s Z_j^s E) and are
// absorbed into measurement domains (plane-dependent s/t updates).

#include "mbq/mbqc/pattern.h"

namespace mbq::mbqc {

/// Rewrite p into standard form; semantics preserved branch-by-branch
/// (recorded outcomes keep the same meaning).
Pattern standardize(const Pattern& p);

/// True if commands appear in N* E* M* C* order.
bool is_standard(const Pattern& p);

}  // namespace mbq::mbqc
