#pragma once
// Open graphs: the (graph, inputs, outputs, measurement labels) view of a
// pattern, the domain of flow/gflow theory (refs [32], [33] of the paper).

#include <unordered_map>
#include <vector>

#include "mbq/graph/graph.h"
#include "mbq/mbqc/pattern.h"

namespace mbq::mbqc {

struct OpenGraph {
  Graph g;
  std::vector<int> wire_of_vertex;
  std::unordered_map<int, int> vertex_of_wire;
  std::vector<int> input_vertices;
  std::vector<int> output_vertices;
  /// Per vertex: measurement plane/angle; outputs keep plane XY, angle 0
  /// and measured[v] == false.
  std::vector<MeasBasis> plane;
  std::vector<real> angle;
  std::vector<bool> measured;
  /// Measurement position in the pattern (-1 for outputs).
  std::vector<int> meas_position;

  int num_vertices() const { return g.num_vertices(); }
  bool is_output(int v) const { return !measured[v]; }
};

/// Build the open graph of a pattern (parallel E edges collapse).
OpenGraph open_graph_from_pattern(const Pattern& p);

}  // namespace mbq::mbqc
