#include "mbq/mbqc/runner.h"

#include <memory>

#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/mbqc/compiled.h"

namespace mbq::mbqc {

namespace {

ExecOptions exec_options(const RunOptions& options) {
  return {options.apply_corrections, options.input_states,
          options.entangler_noise, options.precision};
}

}  // namespace

RunResult run(const Pattern& p, Rng& rng, const RunOptions& options) {
  const int num_meas = p.num_measurements();
  MBQ_REQUIRE(options.forced.empty() ||
                  static_cast<int>(options.forced.size()) == num_meas,
              "forced outcomes size " << options.forced.size()
                                      << " != measurement count " << num_meas);
  PatternExecutor executor(std::make_shared<const CompiledPattern>(p),
                           exec_options(options));
  if (!options.forced.empty()) return executor.run_forced(options.forced);
  return executor.run(rng);
}

RunResult run_interpreted(const Pattern& p, Rng& rng,
                          const RunOptions& options) {
  p.validate();
  const int num_meas = p.num_measurements();
  MBQ_REQUIRE(options.forced.empty() ||
                  static_cast<int>(options.forced.size()) == num_meas,
              "forced outcomes size " << options.forced.size()
                                      << " != measurement count " << num_meas);

  MBQ_REQUIRE(options.entangler_noise >= 0.0 && options.entangler_noise <= 1.0,
              "noise probability out of range: " << options.entangler_noise);
  MBQ_REQUIRE(options.entangler_noise == 0.0 || options.forced.empty(),
              "entangler noise is incompatible with forced outcomes");

  DynamicStatevector dsv(options.precision);
  RunResult result;
  std::vector<int> outcomes;  // recorded outcomes by signal id
  outcomes.reserve(num_meas);

  // Load inputs.
  for (int w : p.inputs()) {
    auto it = options.input_states.find(w);
    if (it == options.input_states.end()) {
      dsv.add_wire(w, /*plus=*/true);
    } else {
      dsv.add_wire_state(w, it->second.first, it->second.second);
    }
  }

  int meas_index = 0;
  for (const Command& c : p.commands()) {
    if (const auto* n = std::get_if<CmdPrep>(&c)) {
      dsv.add_wire(n->wire, /*plus=*/true);
    } else if (const auto* e = std::get_if<CmdEntangle>(&c)) {
      dsv.apply_cz_depolarize(e->a, e->b, options.entangler_noise, rng);
    } else if (const auto* m = std::get_if<CmdMeasure>(&c)) {
      const int s = m->s_domain.evaluate(outcomes);
      const int t = m->t_domain.evaluate(outcomes);
      const real angle = (s ? -1.0 : 1.0) * m->angle;
      const Matrix basis = measurement_basis(m->plane, angle);
      const int forced =
          options.forced.empty() ? -1 : options.forced[meas_index];
      const int raw = dsv.measure_remove(m->wire, basis, rng, forced);
      outcomes.push_back(raw ^ t);
      ++meas_index;
    } else if (const auto* x = std::get_if<CmdCorrectX>(&c)) {
      const int v = x->domain.evaluate(outcomes);
      if (options.apply_corrections) {
        if (v) dsv.apply_x(x->wire);
      } else {
        result.pending_x[x->wire] ^= v;
      }
    } else if (const auto* z = std::get_if<CmdCorrectZ>(&c)) {
      const int v = z->domain.evaluate(outcomes);
      if (options.apply_corrections) {
        if (v) dsv.apply_z(z->wire);
      } else {
        result.pending_z[z->wire] ^= v;
      }
    }
  }

  result.outcomes = std::move(outcomes);
  result.peak_live = dsv.peak_live();
  result.output_state = dsv.state_in_order(p.outputs());
  return result;
}

std::vector<RunResult> run_all_branches(const Pattern& p, int max_measurements,
                                        const RunOptions& base) {
  const int m = p.num_measurements();
  MBQ_REQUIRE(m <= max_measurements,
              "pattern has " << m << " measurements; exhaustive enumeration "
                             << "capped at " << max_measurements);
  MBQ_REQUIRE(base.forced.empty(),
              "run_all_branches enumerates every branch itself; do not pass "
              "forced outcomes");
  MBQ_REQUIRE(base.entangler_noise == 0.0,
              "run_all_branches forces every outcome, which is incompatible "
              "with entangler noise");
  PatternExecutor executor(std::make_shared<const CompiledPattern>(p),
                           exec_options(base));
  std::vector<RunResult> results;
  results.reserve(std::size_t{1} << m);
  for (std::uint64_t branch = 0; branch < (std::uint64_t{1} << m); ++branch)
    results.push_back(executor.run_forced(branch));
  return results;
}

}  // namespace mbq::mbqc
