#pragma once
// Generalized flow (gflow) with measurement planes XY, XZ-free subset
// (we use XY and YZ, plus the Pauli specials X and Z), per Browne,
// Kashefi, Mhalla and Perdrix (ref [33] of the paper).
//
// gflow existence certifies that a pattern can be made deterministic by
// signal corrections — it is the formal counterpart of the paper's
// statement that "a deterministic measurement pattern emerges" from the
// derivation of Sec. III.  The compiled MBQC-QAOA patterns are checked to
// have gflow in tests and benches.

#include <optional>
#include <vector>

#include "mbq/mbqc/open_graph.h"

namespace mbq::mbqc {

struct GFlow {
  /// Correction set g(u) per measured vertex (sorted vertex lists).
  std::vector<std::vector<int>> g;
  /// Layer per vertex: outputs 0, increasing toward earlier measurements.
  std::vector<int> layer;
};

/// Find a gflow via backward layering + GF(2) elimination, or nullopt.
std::optional<GFlow> find_gflow(const OpenGraph& og);

/// Verify the gflow conditions:
///   - g(u) avoids inputs; members are u or later-measured/outputs;
///   - Odd(g(u)) members are u or later;
///   - plane conditions: XY: u not in g(u), u in Odd; YZ/Z: u in g(u),
///     u not in Odd; X treated as XY.
bool verify_gflow(const OpenGraph& og, const GFlow& gf);

}  // namespace mbq::mbqc
