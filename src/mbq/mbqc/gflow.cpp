#include "mbq/mbqc/gflow.h"

#include <algorithm>
#include <set>

#include "mbq/common/error.h"

namespace mbq::mbqc {

namespace {

/// Solve A x = b over GF(2); A is rows x cols bit matrix (row-major
/// vector<vector<char>>).  Returns any solution or nullopt.
std::optional<std::vector<char>> solve_gf2(std::vector<std::vector<char>> a,
                                           std::vector<char> b) {
  const std::size_t rows = a.size();
  const std::size_t cols = rows ? a[0].size() : 0;
  std::vector<int> pivot_col_of_row;
  std::size_t r = 0;
  for (std::size_t c = 0; c < cols && r < rows; ++c) {
    std::size_t pivot = r;
    while (pivot < rows && !a[pivot][c]) ++pivot;
    if (pivot == rows) continue;
    std::swap(a[pivot], a[r]);
    std::swap(b[pivot], b[r]);
    for (std::size_t i = 0; i < rows; ++i) {
      if (i != r && a[i][c]) {
        for (std::size_t j = c; j < cols; ++j) a[i][j] ^= a[r][j];
        b[i] ^= b[r];
      }
    }
    pivot_col_of_row.push_back(static_cast<int>(c));
    ++r;
  }
  // Consistency: zero rows must have zero rhs.
  for (std::size_t i = r; i < rows; ++i)
    if (b[i]) return std::nullopt;
  std::vector<char> x(cols, 0);
  for (std::size_t i = 0; i < r; ++i) x[pivot_col_of_row[i]] = b[i];
  return x;
}

}  // namespace

std::optional<GFlow> find_gflow(const OpenGraph& og) {
  const int n = og.num_vertices();
  const std::set<int> inputs(og.input_vertices.begin(),
                             og.input_vertices.end());

  GFlow gf;
  gf.g.assign(n, {});
  gf.layer.assign(n, 0);

  std::vector<char> solved(n, 0);
  std::vector<int> unsolved;
  for (int v = 0; v < n; ++v) {
    if (og.measured[v]) {
      unsolved.push_back(v);
    } else {
      solved[v] = 1;  // outputs, layer 0
    }
  }

  int layer = 1;
  while (!unsolved.empty()) {
    std::vector<int> newly;
    for (int u : unsolved) {
      // Candidate correction-set members: already-solved vertices that are
      // not inputs (g(u) must avoid inputs).
      std::vector<int> cand;
      for (int v = 0; v < n; ++v)
        if (solved[v] && !inputs.count(v)) cand.push_back(v);

      // Rows: one per currently-unsolved vertex w (Odd(g) must not hit
      // them except as allowed at u).  u itself is among the unsolved.
      std::vector<std::vector<char>> a;
      std::vector<char> b;
      const bool u_in_g = og.plane[u] == MeasBasis::YZ ||
                          og.plane[u] == MeasBasis::Z;
      for (int w : unsolved) {
        std::vector<char> row(cand.size(), 0);
        for (std::size_t j = 0; j < cand.size(); ++j)
          row[j] = og.g.has_edge(cand[j], w) ? 1 : 0;
        char rhs = 0;
        if (w == u) {
          // XY: u in Odd(g).  YZ: u not in Odd(g) (with u in g; u has no
          // self-loop so adding u to g does not change Odd at u).
          rhs = u_in_g ? 0 : 1;
        } else {
          // Odd(g) must avoid w; if u in g, the fixed member u
          // contributes adj(u, w).
          rhs = u_in_g && og.g.has_edge(u, w) ? 1 : 0;
        }
        a.push_back(std::move(row));
        b.push_back(rhs);
      }
      const auto sol = solve_gf2(std::move(a), std::move(b));
      if (!sol) continue;
      std::vector<int> gset;
      if (u_in_g) gset.push_back(u);
      for (std::size_t j = 0; j < cand.size(); ++j)
        if ((*sol)[j]) gset.push_back(cand[j]);
      std::sort(gset.begin(), gset.end());
      gf.g[u] = std::move(gset);
      gf.layer[u] = layer;
      newly.push_back(u);
    }
    if (newly.empty()) return std::nullopt;
    for (int u : newly) {
      solved[u] = 1;
      unsolved.erase(std::remove(unsolved.begin(), unsolved.end(), u),
                     unsolved.end());
    }
    ++layer;
  }
  return gf;
}

bool verify_gflow(const OpenGraph& og, const GFlow& gf) {
  const int n = og.num_vertices();
  const std::set<int> inputs(og.input_vertices.begin(),
                             og.input_vertices.end());
  auto odd_neighborhood = [&](const std::vector<int>& s) {
    std::vector<int> count(n, 0);
    for (int v : s)
      for (int w : og.g.neighbors(v)) ++count[w];
    std::vector<int> odd;
    for (int v = 0; v < n; ++v)
      if (count[v] & 1) odd.push_back(v);
    return odd;
  };
  auto later_or_self = [&](int u, int w) {
    // w measured after u (strictly smaller layer) or w == u.
    return w == u || gf.layer[w] < gf.layer[u];
  };

  for (int u = 0; u < n; ++u) {
    if (!og.measured[u]) continue;
    const auto& gset = gf.g[u];
    if (gf.layer[u] <= 0) return false;
    const bool u_in_g = std::binary_search(gset.begin(), gset.end(), u);
    const auto odd = odd_neighborhood(gset);
    const bool u_in_odd = std::binary_search(odd.begin(), odd.end(), u);

    for (int w : gset) {
      if (inputs.count(w)) return false;
      if (!later_or_self(u, w)) return false;
    }
    for (int w : odd) {
      if (!later_or_self(u, w)) return false;
    }
    switch (og.plane[u]) {
      case MeasBasis::XY:
      case MeasBasis::X:
        if (u_in_g || !u_in_odd) return false;
        break;
      case MeasBasis::YZ:
      case MeasBasis::Z:
        if (!u_in_g || u_in_odd) return false;
        break;
    }
  }
  return true;
}

}  // namespace mbq::mbqc
