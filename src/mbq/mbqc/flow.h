#pragma once
// Causal flow (Danos & Kashefi, ref [32]): the simplest sufficient
// condition for a deterministic XY-plane pattern on an open graph.

#include <optional>
#include <vector>

#include "mbq/mbqc/open_graph.h"

namespace mbq::mbqc {

struct CausalFlow {
  /// Correcting vertex per measured vertex (-1 for outputs).
  std::vector<int> f;
  /// Layer number per vertex; outputs are layer 0 and layers increase
  /// toward earlier measurements (u is measured before v iff
  /// layer[u] > layer[v] whenever the order matters).
  std::vector<int> layer;
};

/// Find a causal flow, or nullopt if none exists.  Requires every measured
/// vertex to use the XY plane (or X, which is XY at angle 0); other planes
/// make causal flow inapplicable and also return nullopt.
std::optional<CausalFlow> find_causal_flow(const OpenGraph& og);

/// Check the defining conditions: u ~ f(u); u before f(u); u before every
/// other neighbour of f(u).
bool verify_causal_flow(const OpenGraph& og, const CausalFlow& flow);

}  // namespace mbq::mbqc
