#include "mbq/mbqc/pattern.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "mbq/common/error.h"

namespace mbq::mbqc {

namespace {

const char* plane_name(MeasBasis b) {
  switch (b) {
    case MeasBasis::Z: return "Z";
    case MeasBasis::X: return "X";
    case MeasBasis::XY: return "XY";
    case MeasBasis::YZ: return "YZ";
  }
  return "?";
}

}  // namespace

std::string command_str(const Command& c) {
  std::ostringstream oss;
  if (const auto* p = std::get_if<CmdPrep>(&c)) {
    oss << "N(" << p->wire << ")";
  } else if (const auto* e = std::get_if<CmdEntangle>(&c)) {
    oss << "E(" << e->a << "," << e->b << ")";
  } else if (const auto* m = std::get_if<CmdMeasure>(&c)) {
    oss << "M" << plane_name(m->plane) << "(" << m->wire << "; "
        << m->angle;
    if (!m->s_domain.empty()) oss << "; s=" << m->s_domain.str();
    if (!m->t_domain.empty()) oss << "; t=" << m->t_domain.str();
    oss << ") -> s" << m->outcome;
  } else if (const auto* x = std::get_if<CmdCorrectX>(&c)) {
    oss << "X(" << x->wire << ")^" << x->domain.str();
  } else if (const auto* z = std::get_if<CmdCorrectZ>(&c)) {
    oss << "Z(" << z->wire << ")^" << z->domain.str();
  }
  return oss.str();
}

void Pattern::add_input(int wire) {
  MBQ_REQUIRE(std::find(inputs_.begin(), inputs_.end(), wire) == inputs_.end(),
              "wire " << wire << " already declared input");
  inputs_.push_back(wire);
}

void Pattern::add_prep(int wire) { commands_.push_back(CmdPrep{wire}); }

void Pattern::add_entangle(int a, int b) {
  MBQ_REQUIRE(a != b, "cannot entangle wire " << a << " with itself");
  commands_.push_back(CmdEntangle{a, b});
}

signal_t Pattern::add_measure(int wire, MeasBasis plane, real angle,
                              SignalExpr s_domain, SignalExpr t_domain) {
  CmdMeasure m;
  m.wire = wire;
  m.plane = plane;
  m.angle = angle;
  m.s_domain = std::move(s_domain);
  m.t_domain = std::move(t_domain);
  m.outcome = next_signal_++;
  commands_.push_back(m);
  return m.outcome;
}

void Pattern::add_correct_x(int wire, SignalExpr domain) {
  commands_.push_back(CmdCorrectX{wire, std::move(domain)});
}

void Pattern::add_correct_z(int wire, SignalExpr domain) {
  commands_.push_back(CmdCorrectZ{wire, std::move(domain)});
}

void Pattern::set_outputs(std::vector<int> outputs) {
  outputs_ = std::move(outputs);
}

int Pattern::num_wires() const {
  std::set<int> wires(inputs_.begin(), inputs_.end());
  for (const Command& c : commands_) {
    if (const auto* p = std::get_if<CmdPrep>(&c)) wires.insert(p->wire);
  }
  return static_cast<int>(wires.size());
}

int Pattern::num_prepared() const {
  int n = 0;
  for (const Command& c : commands_) n += std::holds_alternative<CmdPrep>(c);
  return n;
}

int Pattern::num_entangling() const {
  int n = 0;
  for (const Command& c : commands_)
    n += std::holds_alternative<CmdEntangle>(c);
  return n;
}

int Pattern::num_measurements() const {
  int n = 0;
  for (const Command& c : commands_) n += std::holds_alternative<CmdMeasure>(c);
  return n;
}

int Pattern::num_corrections() const {
  int n = 0;
  for (const Command& c : commands_)
    n += std::holds_alternative<CmdCorrectX>(c) ||
         std::holds_alternative<CmdCorrectZ>(c);
  return n;
}

std::pair<Graph, std::vector<int>> Pattern::entanglement_graph() const {
  std::vector<int> wire_of_vertex;
  std::unordered_map<int, int> vertex_of_wire;
  auto vertex = [&](int wire) {
    auto it = vertex_of_wire.find(wire);
    if (it != vertex_of_wire.end()) return it->second;
    const int v = static_cast<int>(wire_of_vertex.size());
    wire_of_vertex.push_back(wire);
    vertex_of_wire.emplace(wire, v);
    return v;
  };
  for (int w : inputs_) vertex(w);
  for (const Command& c : commands_) {
    if (const auto* p = std::get_if<CmdPrep>(&c)) vertex(p->wire);
  }
  Graph g(static_cast<int>(wire_of_vertex.size()));
  for (const Command& c : commands_) {
    if (const auto* e = std::get_if<CmdEntangle>(&c)) {
      const int a = vertex(e->a);
      const int b = vertex(e->b);
      if (!g.has_edge(a, b)) g.add_edge(a, b);
    }
  }
  return {std::move(g), std::move(wire_of_vertex)};
}

void Pattern::validate() const {
  enum class WireState { Unknown, Live, Measured };
  std::unordered_map<int, WireState> state;
  for (int w : inputs_) state[w] = WireState::Live;
  std::unordered_set<int> measured_wires;
  signal_t measured_signals = 0;

  auto require_live = [&](int wire, const Command& c) {
    auto it = state.find(wire);
    MBQ_REQUIRE(it != state.end() && it->second == WireState::Live,
                "command " << command_str(c) << " uses wire " << wire
                           << " which is "
                           << (it == state.end() ? "not prepared"
                                                 : "already measured"));
  };
  auto require_signals = [&](const SignalExpr& s, const Command& c) {
    MBQ_REQUIRE(s.max_variable() < measured_signals,
                "command " << command_str(c) << " depends on signal s"
                           << s.max_variable()
                           << " which is not yet measured (definiteness)");
  };

  for (const Command& c : commands_) {
    if (const auto* p = std::get_if<CmdPrep>(&c)) {
      MBQ_REQUIRE(state.find(p->wire) == state.end(),
                  "wire " << p->wire << " prepared twice (or is an input)");
      state[p->wire] = WireState::Live;
    } else if (const auto* e = std::get_if<CmdEntangle>(&c)) {
      require_live(e->a, c);
      require_live(e->b, c);
    } else if (const auto* m = std::get_if<CmdMeasure>(&c)) {
      require_live(m->wire, c);
      require_signals(m->s_domain, c);
      require_signals(m->t_domain, c);
      MBQ_REQUIRE(m->outcome == measured_signals,
                  "measurement outcomes must be numbered in order; got s"
                      << m->outcome << ", expected s" << measured_signals);
      ++measured_signals;
      state[m->wire] = WireState::Measured;
      measured_wires.insert(m->wire);
    } else if (const auto* x = std::get_if<CmdCorrectX>(&c)) {
      require_live(x->wire, c);
      require_signals(x->domain, c);
    } else if (const auto* z = std::get_if<CmdCorrectZ>(&c)) {
      require_live(z->wire, c);
      require_signals(z->domain, c);
    }
  }
  MBQ_REQUIRE(measured_signals == next_signal_, "signal counter mismatch");

  // Outputs = exactly the live wires.
  std::set<int> live;
  for (const auto& [w, st] : state)
    if (st == WireState::Live) live.insert(w);
  std::set<int> outs(outputs_.begin(), outputs_.end());
  MBQ_REQUIRE(outs.size() == outputs_.size(), "duplicate output wires");
  MBQ_REQUIRE(live == outs,
              "outputs do not match unmeasured wires: " << live.size()
                  << " live vs " << outs.size() << " declared");
}

std::string Pattern::str() const {
  std::ostringstream oss;
  oss << "Pattern(wires=" << num_wires() << ", E=" << num_entangling()
      << ", M=" << num_measurements() << ", outputs=" << outputs_.size()
      << ")\n";
  for (const Command& c : commands_) oss << "  " << command_str(c) << "\n";
  return oss.str();
}

}  // namespace mbq::mbqc
