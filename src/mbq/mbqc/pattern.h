#pragma once
// Measurement patterns (the measurement calculus of Danos, Kashefi and
// Panangaden, specialized to what the paper uses).
//
// A pattern is a sequence of commands over integer wire ids:
//   N(i)                    prepare wire i in |+>
//   E(i,j)                  CZ between wires i and j
//   M(i, plane, angle,
//     s_domain, t_domain)   adaptive single-qubit measurement: the actual
//                           measurement angle is (-1)^{s} * angle, and the
//                           RECORDED outcome is the raw outcome XOR t.
//                           The recorded outcome is bound to a fresh
//                           signal variable (returned by add_measure).
//   X(i, domain), Z(i, domain)  conditional Pauli corrections.
//
// Signal domains are XOR-expressions over earlier outcomes; this is how
// the paper's adaptive parities (n, n', P_u of Sec. III) are represented.
// For XY measurements the (s, t) adaptation is equivalent to the usual
// M^{(-1)^s alpha + t pi}; for YZ measurements the angle-shift form does
// not exist but the outcome-flip form does, which is why we adopt it
// uniformly (see DESIGN.md).
//
// Wires may also be declared as INPUTS: they are not N-prepared; the
// runner loads a caller-supplied single-qubit state instead (enough to
// verify unitary patterns on product states).

#include <string>
#include <variant>
#include <vector>

#include "mbq/common/signal.h"
#include "mbq/common/types.h"
#include "mbq/graph/graph.h"
#include "mbq/sim/dynamic_statevector.h"

namespace mbq::mbqc {

struct CmdPrep {
  int wire;
};

struct CmdEntangle {
  int a;
  int b;
};

struct CmdMeasure {
  int wire;
  MeasBasis plane = MeasBasis::XY;
  real angle = 0.0;
  SignalExpr s_domain;  // flips the measurement angle sign
  SignalExpr t_domain;  // flips the recorded outcome
  signal_t outcome = -1;
};

struct CmdCorrectX {
  int wire;
  SignalExpr domain;
};

struct CmdCorrectZ {
  int wire;
  SignalExpr domain;
};

using Command =
    std::variant<CmdPrep, CmdEntangle, CmdMeasure, CmdCorrectX, CmdCorrectZ>;

std::string command_str(const Command& c);

class Pattern {
 public:
  Pattern() = default;

  /// Declare an input wire (loaded by the runner, not N-prepared).
  void add_input(int wire);
  void add_prep(int wire);
  void add_entangle(int a, int b);
  /// Returns the signal variable bound to the recorded outcome.
  signal_t add_measure(int wire, MeasBasis plane, real angle,
                       SignalExpr s_domain = {}, SignalExpr t_domain = {});
  void add_correct_x(int wire, SignalExpr domain);
  void add_correct_z(int wire, SignalExpr domain);
  /// Declare the ordered output wires (must stay unmeasured).
  void set_outputs(std::vector<int> outputs);

  const std::vector<Command>& commands() const noexcept { return commands_; }
  const std::vector<int>& inputs() const noexcept { return inputs_; }
  const std::vector<int>& outputs() const noexcept { return outputs_; }
  int num_signals() const noexcept { return next_signal_; }

  // --- statistics (the resource quantities of Sec. III-A) ---
  /// Total distinct wires (inputs + prepared).
  int num_wires() const;
  /// Prepared (N) wires only, i.e. the paper's qubit count N_Q when there
  /// are no inputs.
  int num_prepared() const;
  int num_entangling() const;
  int num_measurements() const;
  int num_corrections() const;

  /// The entanglement graph: one vertex per wire (in first-use order),
  /// one edge per E command.  This is the MBQC resource/graph state.
  /// Returns the graph and the wire id of each vertex.
  std::pair<Graph, std::vector<int>> entanglement_graph() const;

  /// Full structural validation:
  ///  - every wire is prepared (or input) exactly once, before use;
  ///  - no command touches a wire after its measurement;
  ///  - measurement domains only reference earlier outcomes (definiteness,
  ///    i.e. the pattern is runnable left to right);
  ///  - outputs are exactly the unmeasured wires.
  /// Throws Error with a description on violation.
  void validate() const;

  std::string str() const;

 private:
  std::vector<Command> commands_;
  std::vector<int> inputs_;
  std::vector<int> outputs_;
  signal_t next_signal_ = 0;
};

}  // namespace mbq::mbqc
