#include "mbq/mbqc/from_circuit.h"

#include "mbq/common/error.h"

namespace mbq::mbqc {

namespace {

class Translator {
 public:
  Translator(Pattern& p, int n, bool plus_inputs) : p_(p) {
    cur_.resize(n);
    fx_.resize(n);
    fz_.resize(n);
    for (int q = 0; q < n; ++q) {
      cur_[q] = next_wire_++;
      if (plus_inputs) {
        p_.add_prep(cur_[q]);
      } else {
        p_.add_input(cur_[q]);
      }
    }
  }

  /// J(alpha) = H Rz(alpha) on logical qubit q, consuming one ancilla.
  void j(int q, real alpha) {
    const int a = next_wire_++;
    p_.add_prep(a);
    p_.add_entangle(cur_[q], a);
    const signal_t m =
        p_.add_measure(cur_[q], MeasBasis::XY, -alpha, fx_[q], fz_[q]);
    fz_[q] = fx_[q];
    fx_[q] = SignalExpr(m);
    cur_[q] = a;
  }

  void cz(int u, int v) {
    p_.add_entangle(cur_[u], cur_[v]);
    // CZ X_u^s = X_u^s Z_v^s CZ (and symmetrically).
    const SignalExpr fxu = fx_[u];
    fz_[u] ^= fx_[v];
    fz_[v] ^= fxu;
  }

  void rz(int q, real theta) {
    j(q, theta);
    j(q, 0.0);
  }

  void rx(int q, real theta) {
    j(q, 0.0);
    j(q, theta);
  }

  void gate(const Gate& g) {
    switch (g.kind) {
      case GateKind::H: j(g.qubits[0], 0.0); break;
      case GateKind::Rz: rz(g.qubits[0], g.angle); break;
      case GateKind::Rx: rx(g.qubits[0], g.angle); break;
      case GateKind::Z: rz(g.qubits[0], kPi); break;
      case GateKind::X: rx(g.qubits[0], kPi); break;
      case GateKind::Y:
        rz(g.qubits[0], kPi);
        rx(g.qubits[0], kPi);
        break;
      case GateKind::S: rz(g.qubits[0], kPi / 2); break;
      case GateKind::Sdg: rz(g.qubits[0], -kPi / 2); break;
      case GateKind::T: rz(g.qubits[0], kPi / 4); break;
      case GateKind::Tdg: rz(g.qubits[0], -kPi / 4); break;
      case GateKind::Cz: cz(g.qubits[0], g.qubits[1]); break;
      case GateKind::Cx:
        j(g.qubits[1], 0.0);
        cz(g.qubits[0], g.qubits[1]);
        j(g.qubits[1], 0.0);
        break;
      case GateKind::PhaseGadget: {
        // Generic CX-ladder compilation (deliberately not the tailored
        // gadget): CX chain down, Rz on the last, CX chain up.
        const auto& s = g.qubits;
        for (std::size_t i = 0; i + 1 < s.size(); ++i) {
          j(s[i + 1], 0.0);
          cz(s[i], s[i + 1]);
          j(s[i + 1], 0.0);
        }
        rz(s.back(), g.angle);
        for (std::size_t i = s.size() - 1; i-- > 0;) {
          j(s[i + 1], 0.0);
          cz(s[i], s[i + 1]);
          j(s[i + 1], 0.0);
        }
        break;
      }
      case GateKind::ControlledExpX:
        throw InternalError(
            "ControlledExpX must be expanded before pattern translation");
    }
  }

  void finish() {
    std::vector<int> outs;
    for (std::size_t q = 0; q < cur_.size(); ++q) {
      if (!fx_[q].empty()) p_.add_correct_x(cur_[q], fx_[q]);
      if (!fz_[q].empty()) p_.add_correct_z(cur_[q], fz_[q]);
      outs.push_back(cur_[q]);
    }
    p_.set_outputs(std::move(outs));
  }

 private:
  Pattern& p_;
  int next_wire_ = 0;
  std::vector<int> cur_;
  std::vector<SignalExpr> fx_, fz_;
};

}  // namespace

Pattern pattern_from_circuit(const Circuit& circuit, bool plus_inputs) {
  const Circuit c = circuit.expand_controlled_gates();
  Pattern p;
  Translator tr(p, c.num_qubits(), plus_inputs);
  for (const Gate& g : c.gates()) tr.gate(g);
  tr.finish();
  p.validate();
  return p;
}

}  // namespace mbq::mbqc
