#include "mbq/mbqc/from_circuit.h"

#include "mbq/common/error.h"

namespace mbq::mbqc {

namespace {

class Translator {
 public:
  Translator(Pattern& p, int n, bool plus_inputs, const ScheduleHints& hints)
      : p_(p), defer_(plus_inputs && hints.defer_initial_preps) {
    cur_.resize(n);
    prepped_.assign(n, !defer_);
    fx_.resize(n);
    fz_.resize(n);
    for (int q = 0; q < n; ++q) {
      cur_[q] = next_wire_++;
      if (defer_) continue;  // prep at first use instead
      if (plus_inputs) {
        p_.add_prep(cur_[q]);
      } else {
        p_.add_input(cur_[q]);
      }
    }
  }

  /// J(alpha) = H Rz(alpha) on logical qubit q, consuming one ancilla.
  void j(int q, real alpha) {
    ensure_prepped(q);
    const int a = next_wire_++;
    p_.add_prep(a);
    p_.add_entangle(cur_[q], a);
    const signal_t m =
        p_.add_measure(cur_[q], MeasBasis::XY, -alpha, fx_[q], fz_[q]);
    fz_[q] = fx_[q];
    fx_[q] = SignalExpr(m);
    cur_[q] = a;
  }

  void cz(int u, int v) {
    ensure_prepped(u);
    ensure_prepped(v);
    p_.add_entangle(cur_[u], cur_[v]);
    // CZ X_u^s = X_u^s Z_v^s CZ (and symmetrically).
    const SignalExpr fxu = fx_[u];
    fz_[u] ^= fx_[v];
    fz_[v] ^= fxu;
  }

  void rz(int q, real theta) {
    j(q, theta);
    j(q, 0.0);
  }

  void rx(int q, real theta) {
    j(q, 0.0);
    j(q, theta);
  }

  void gate(const Gate& g) {
    switch (g.kind) {
      case GateKind::H: j(g.qubits[0], 0.0); break;
      case GateKind::Rz: rz(g.qubits[0], g.angle); break;
      case GateKind::Rx: rx(g.qubits[0], g.angle); break;
      case GateKind::Z: rz(g.qubits[0], kPi); break;
      case GateKind::X: rx(g.qubits[0], kPi); break;
      case GateKind::Y:
        rz(g.qubits[0], kPi);
        rx(g.qubits[0], kPi);
        break;
      case GateKind::S: rz(g.qubits[0], kPi / 2); break;
      case GateKind::Sdg: rz(g.qubits[0], -kPi / 2); break;
      case GateKind::T: rz(g.qubits[0], kPi / 4); break;
      case GateKind::Tdg: rz(g.qubits[0], -kPi / 4); break;
      case GateKind::Cz: cz(g.qubits[0], g.qubits[1]); break;
      case GateKind::Cx:
        j(g.qubits[1], 0.0);
        cz(g.qubits[0], g.qubits[1]);
        j(g.qubits[1], 0.0);
        break;
      case GateKind::PhaseGadget: {
        // Generic CX-ladder compilation (deliberately not the tailored
        // gadget): CX chain down, Rz on the last, CX chain up.
        const auto& s = g.qubits;
        for (std::size_t i = 0; i + 1 < s.size(); ++i) {
          j(s[i + 1], 0.0);
          cz(s[i], s[i + 1]);
          j(s[i + 1], 0.0);
        }
        rz(s.back(), g.angle);
        for (std::size_t i = s.size() - 1; i-- > 0;) {
          j(s[i + 1], 0.0);
          cz(s[i], s[i + 1]);
          j(s[i + 1], 0.0);
        }
        break;
      }
      case GateKind::ControlledExpX:
        throw InternalError(
            "ControlledExpX must be expanded before pattern translation");
    }
  }

  void finish() {
    // Untouched wires still exist as |+> outputs.
    for (std::size_t q = 0; q < cur_.size(); ++q)
      ensure_prepped(static_cast<int>(q));
    std::vector<int> outs;
    for (std::size_t q = 0; q < cur_.size(); ++q) {
      if (!fx_[q].empty()) p_.add_correct_x(cur_[q], fx_[q]);
      if (!fz_[q].empty()) p_.add_correct_z(cur_[q], fz_[q]);
      outs.push_back(cur_[q]);
    }
    p_.set_outputs(std::move(outs));
  }

 private:
  void ensure_prepped(int q) {
    if (prepped_[q]) return;
    p_.add_prep(cur_[q]);
    prepped_[q] = true;
  }

  Pattern& p_;
  bool defer_ = false;
  int next_wire_ = 0;
  std::vector<int> cur_;
  std::vector<char> prepped_;
  std::vector<SignalExpr> fx_, fz_;
};

}  // namespace

Pattern pattern_from_circuit(const Circuit& circuit, bool plus_inputs,
                             const ScheduleHints& hints) {
  const Circuit c = circuit.expand_controlled_gates();
  Pattern p;
  Translator tr(p, c.num_qubits(), plus_inputs, hints);
  for (const Gate& g : c.gates()) tr.gate(g);
  tr.finish();
  p.validate();
  return p;
}

}  // namespace mbq::mbqc
