#include "mbq/mbqc/scheduler.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "mbq/common/error.h"

namespace mbq::mbqc {

int peak_live_of(const Pattern& p) {
  int live = static_cast<int>(p.inputs().size());
  int peak = live;
  for (const Command& c : p.commands()) {
    if (std::holds_alternative<CmdPrep>(c)) {
      peak = std::max(peak, ++live);
    } else if (std::holds_alternative<CmdMeasure>(c)) {
      --live;
    }
  }
  return peak;
}

Schedule schedule_for_reuse(const Pattern& p) {
  p.validate();
  const auto& cmds = p.commands();
  const int m = static_cast<int>(cmds.size());

  // Dependency edges: previous command on the same wire, and the
  // measurement producing each referenced signal.
  std::vector<std::vector<int>> deps(m);
  std::unordered_map<int, int> last_on_wire;
  std::unordered_map<signal_t, int> producer;
  auto add_wire_dep = [&](int idx, int wire) {
    auto it = last_on_wire.find(wire);
    if (it != last_on_wire.end()) deps[idx].push_back(it->second);
    last_on_wire[wire] = idx;
  };
  auto add_signal_deps = [&](int idx, const SignalExpr& s) {
    for (signal_t v : s.variables()) deps[idx].push_back(producer.at(v));
  };
  for (int i = 0; i < m; ++i) {
    const Command& c = cmds[i];
    if (const auto* n = std::get_if<CmdPrep>(&c)) {
      add_wire_dep(i, n->wire);
    } else if (const auto* e = std::get_if<CmdEntangle>(&c)) {
      add_wire_dep(i, e->a);
      add_wire_dep(i, e->b);
    } else if (const auto* mm = std::get_if<CmdMeasure>(&c)) {
      add_wire_dep(i, mm->wire);
      add_signal_deps(i, mm->s_domain);
      add_signal_deps(i, mm->t_domain);
      producer[mm->outcome] = i;
    } else if (const auto* x = std::get_if<CmdCorrectX>(&c)) {
      add_wire_dep(i, x->wire);
      add_signal_deps(i, x->domain);
    } else if (const auto* z = std::get_if<CmdCorrectZ>(&c)) {
      add_wire_dep(i, z->wire);
      add_signal_deps(i, z->domain);
    }
  }

  std::vector<int> missing(m, 0);
  std::vector<std::vector<int>> dependents(m);
  for (int i = 0; i < m; ++i) {
    std::set<int> uniq(deps[i].begin(), deps[i].end());
    missing[i] = static_cast<int>(uniq.size());
    for (int d : uniq) dependents[d].push_back(i);
  }

  auto cls = [&](int i) {
    const Command& c = cmds[i];
    if (std::holds_alternative<CmdMeasure>(c)) return 0;   // best
    if (std::holds_alternative<CmdCorrectX>(c) ||
        std::holds_alternative<CmdCorrectZ>(c))
      return 1;
    if (std::holds_alternative<CmdEntangle>(c)) return 2;
    return 3;                                              // prep last
  };

  // Ready queue keyed by (class, original index) for determinism.
  std::set<std::pair<int, int>> ready;
  for (int i = 0; i < m; ++i)
    if (missing[i] == 0) ready.insert({cls(i), i});

  std::vector<int> order;
  order.reserve(m);
  while (!ready.empty()) {
    const auto [k, i] = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(i);
    for (int j : dependents[i]) {
      if (--missing[j] == 0) ready.insert({cls(j), j});
    }
  }
  MBQ_REQUIRE(static_cast<int>(order.size()) == m,
              "scheduler: dependency cycle (malformed pattern?)");

  // Rebuild the pattern in the new order, renumbering outcomes.
  Schedule out;
  for (int w : p.inputs()) out.pattern.add_input(w);
  std::unordered_map<signal_t, signal_t> remap;
  auto remap_expr = [&](const SignalExpr& s) {
    SignalExpr r;
    for (signal_t v : s.variables()) r ^= SignalExpr(remap.at(v));
    return r;
  };
  for (int i : order) {
    const Command& c = cmds[i];
    if (const auto* n = std::get_if<CmdPrep>(&c)) {
      out.pattern.add_prep(n->wire);
    } else if (const auto* e = std::get_if<CmdEntangle>(&c)) {
      out.pattern.add_entangle(e->a, e->b);
    } else if (const auto* mm = std::get_if<CmdMeasure>(&c)) {
      const signal_t ns =
          out.pattern.add_measure(mm->wire, mm->plane, mm->angle,
                                  remap_expr(mm->s_domain),
                                  remap_expr(mm->t_domain));
      remap[mm->outcome] = ns;
    } else if (const auto* x = std::get_if<CmdCorrectX>(&c)) {
      out.pattern.add_correct_x(x->wire, remap_expr(x->domain));
    } else if (const auto* z = std::get_if<CmdCorrectZ>(&c)) {
      out.pattern.add_correct_z(z->wire, remap_expr(z->domain));
    }
  }
  out.pattern.set_outputs(p.outputs());
  out.pattern.validate();
  out.peak_live = peak_live_of(out.pattern);
  return out;
}

}  // namespace mbq::mbqc
