#include "mbq/mbqc/standardize.h"

#include <unordered_map>

#include "mbq/common/error.h"

namespace mbq::mbqc {

Pattern standardize(const Pattern& p) {
  p.validate();
  Pattern out;
  for (int w : p.inputs()) out.add_input(w);

  std::vector<CmdPrep> preps;
  std::vector<CmdEntangle> entangles;
  std::vector<CmdMeasure> measures;
  std::unordered_map<int, SignalExpr> fx, fz;  // pending correction frames

  for (const Command& c : p.commands()) {
    if (const auto* n = std::get_if<CmdPrep>(&c)) {
      preps.push_back(*n);
    } else if (const auto* e = std::get_if<CmdEntangle>(&c)) {
      // Move E left past the pending frames: E X_a^s = X_a^s Z_b^s E.
      const SignalExpr fxa = fx[e->a];
      fz[e->a] ^= fx[e->b];
      fz[e->b] ^= fxa;
      entangles.push_back(*e);
    } else if (const auto* m = std::get_if<CmdMeasure>(&c)) {
      CmdMeasure mm = *m;
      // Absorb the pending frame into the measurement domains.  For
      // XY-plane (and X) measurements an X byproduct flips the angle sign
      // and a Z byproduct flips the outcome; for YZ-plane (and Z) the
      // roles swap.
      switch (mm.plane) {
        case MeasBasis::XY:
        case MeasBasis::X:
          mm.s_domain ^= fx[mm.wire];
          mm.t_domain ^= fz[mm.wire];
          break;
        case MeasBasis::YZ:
        case MeasBasis::Z:
          mm.s_domain ^= fz[mm.wire];
          mm.t_domain ^= fx[mm.wire];
          break;
      }
      fx.erase(mm.wire);
      fz.erase(mm.wire);
      measures.push_back(mm);
    } else if (const auto* x = std::get_if<CmdCorrectX>(&c)) {
      fx[x->wire] ^= x->domain;
    } else if (const auto* z = std::get_if<CmdCorrectZ>(&c)) {
      fz[z->wire] ^= z->domain;
    }
  }

  for (const auto& n : preps) out.add_prep(n.wire);
  for (const auto& e : entangles) out.add_entangle(e.a, e.b);
  for (const auto& m : measures) {
    const signal_t s =
        out.add_measure(m.wire, m.plane, m.angle, m.s_domain, m.t_domain);
    MBQ_ASSERT(s == m.outcome);  // relative order preserved => ids match
  }
  for (int w : p.outputs()) {
    auto ix = fx.find(w);
    if (ix != fx.end() && !ix->second.empty())
      out.add_correct_x(w, ix->second);
    auto iz = fz.find(w);
    if (iz != fz.end() && !iz->second.empty())
      out.add_correct_z(w, iz->second);
  }
  out.set_outputs(p.outputs());
  out.validate();
  return out;
}

bool is_standard(const Pattern& p) {
  int stage = 0;  // 0=N, 1=E, 2=M, 3=C
  for (const Command& c : p.commands()) {
    int s = 0;
    if (std::holds_alternative<CmdPrep>(c)) s = 0;
    else if (std::holds_alternative<CmdEntangle>(c)) s = 1;
    else if (std::holds_alternative<CmdMeasure>(c)) s = 2;
    else s = 3;
    if (s < stage) return false;
    stage = s;
  }
  return true;
}

}  // namespace mbq::mbqc
