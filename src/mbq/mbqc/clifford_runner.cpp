#include "mbq/mbqc/clifford_runner.h"

#include <cmath>
#include <unordered_map>

#include "mbq/common/error.h"

namespace mbq::mbqc {

namespace {

/// Quantize an angle to k * pi/2; returns k in {0,1,2,3} or -1.
int quarter_turns(real angle) {
  const real q = angle / (kPi / 2);
  const real r = std::round(q);
  if (std::abs(q - r) > 1e-9) return -1;
  int k = static_cast<int>(r) % 4;
  if (k < 0) k += 4;
  return k;
}

}  // namespace

bool is_clifford_pattern(const Pattern& p) {
  for (const Command& c : p.commands()) {
    if (const auto* m = std::get_if<CmdMeasure>(&c)) {
      if (quarter_turns(m->angle) < 0) return false;
    }
  }
  return true;
}

CliffordRunResult run_clifford(const Pattern& p, Rng& rng) {
  p.validate();
  MBQ_REQUIRE(is_clifford_pattern(p),
              "pattern has non-Clifford measurement angles");

  // Map wires to tableau qubits.
  std::unordered_map<int, int> qubit_of_wire;
  int next = 0;
  for (int w : p.inputs()) qubit_of_wire[w] = next++;
  for (const Command& c : p.commands())
    if (const auto* n = std::get_if<CmdPrep>(&c))
      qubit_of_wire[n->wire] = next++;
  MBQ_REQUIRE(next >= 1, "empty pattern");

  Tableau t(next);
  for (int q = 0; q < next; ++q) t.apply_h(q);  // everything starts |+>

  std::vector<int> outcomes;
  for (const Command& c : p.commands()) {
    if (std::holds_alternative<CmdPrep>(c)) {
      // already prepared in |+>
    } else if (const auto* e = std::get_if<CmdEntangle>(&c)) {
      t.apply_cz(qubit_of_wire.at(e->a), qubit_of_wire.at(e->b));
    } else if (const auto* m = std::get_if<CmdMeasure>(&c)) {
      const int q = qubit_of_wire.at(m->wire);
      const int s = m->s_domain.evaluate(outcomes);
      const int tt = m->t_domain.evaluate(outcomes);
      const real angle = (s ? -1.0 : 1.0) * m->angle;
      const int k = quarter_turns(angle);
      MBQ_ASSERT(k >= 0);
      // Map (plane, k * pi/2) to a Pauli measurement and an outcome flip:
      //   XY: 0 -> +X, 1 -> +Y, 2 -> -X, 3 -> -Y
      //   YZ: 0 -> +Z, 1 -> +Y, 2 -> -Z, 3 -> -Y
      // (X plane == XY(0); Z plane == YZ(0).)
      int raw = 0;
      int flip = 0;
      switch (m->plane) {
        case MeasBasis::X:
          raw = t.measure_x(q, rng);
          break;
        case MeasBasis::Z:
          raw = t.measure_z(q, rng);
          break;
        case MeasBasis::XY:
          switch (k) {
            case 0: raw = t.measure_x(q, rng); break;
            case 1: raw = t.measure_y(q, rng); break;
            case 2: raw = t.measure_x(q, rng); flip = 1; break;
            case 3: raw = t.measure_y(q, rng); flip = 1; break;
          }
          break;
        case MeasBasis::YZ:
          switch (k) {
            case 0: raw = t.measure_z(q, rng); break;
            case 1: raw = t.measure_y(q, rng); break;
            case 2: raw = t.measure_z(q, rng); flip = 1; break;
            case 3: raw = t.measure_y(q, rng); flip = 1; break;
          }
          break;
      }
      outcomes.push_back(raw ^ flip ^ tt);
    } else if (const auto* x = std::get_if<CmdCorrectX>(&c)) {
      if (x->domain.evaluate(outcomes))
        t.apply_x(qubit_of_wire.at(x->wire));
    } else if (const auto* z = std::get_if<CmdCorrectZ>(&c)) {
      if (z->domain.evaluate(outcomes))
        t.apply_z(qubit_of_wire.at(z->wire));
    }
  }

  CliffordRunResult result{std::move(outcomes), std::move(t), {}};
  for (int w : p.outputs()) result.output_qubits.push_back(qubit_of_wire.at(w));
  return result;
}

}  // namespace mbq::mbqc
