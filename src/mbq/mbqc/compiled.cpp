#include "mbq/mbqc/compiled.h"

#include "mbq/common/bits.h"
#include "mbq/common/error.h"

namespace mbq::mbqc {

namespace {

/// Longest CZ run folded into one CzGroup pass: beyond this the
/// per-element mask tests cost more than a second pass saves.
constexpr std::size_t kCzGroupChunk = 8;

}  // namespace

CompiledPattern::CompiledPattern(const Pattern& p) {
  p.validate();

  std::unordered_map<int, int> slot_of;
  auto slot = [&](int wire) {
    const auto [it, fresh] = slot_of.try_emplace(wire, num_slots_);
    if (fresh) ++num_slots_;
    return it->second;
  };
  for (const int w : p.inputs()) {
    input_wires_.push_back(w);
    input_slots_.push_back(slot(w));
  }

  auto flatten = [&](const SignalExpr& e, std::uint32_t& begin,
                     std::uint32_t& end) {
    begin = static_cast<std::uint32_t>(signal_pool_.size());
    signal_pool_.insert(signal_pool_.end(), e.variables().begin(),
                        e.variables().end());
    end = static_cast<std::uint32_t>(signal_pool_.size());
  };
  auto fill_measure = [&](Op& op, const CmdMeasure& m) {
    op.a = slot(m.wire);
    op.meas = num_measurements_++;
    flatten(m.s_domain, op.s_begin, op.s_end);
    flatten(m.t_domain, op.t_begin, op.t_end);
    // The runtime angle is (-1)^s · angle; both variants are fixed at
    // compile time, so the adaptive sign becomes a table pick.  The
    // matrices match what the interpreter builds per shot bit for bit
    // (measurement_basis is deterministic and (±1)·angle is exact).
    basis_pos_.push_back(measurement_basis(m.plane, m.angle));
    basis_neg_.push_back(measurement_basis(m.plane, -m.angle));
  };

  // Lowering with peephole fusion.  Every fused group keeps its source
  // commands (order included) in the pools, because noisy execution must
  // replay them one by one to draw from the rng in command order.
  const std::vector<Command>& cmds = p.commands();
  tape_.reserve(cmds.size());
  std::size_t i = 0;
  while (i < cmds.size()) {
    Op op{};
    if (const auto* n = std::get_if<CmdPrep>(&cmds[i])) {
      // Prep + the contiguous CZs touching the fresh wire; if the very
      // next command measures that same wire, the whole gadget block
      // fuses into one op.
      const int w = n->wire;
      op.a = slot(w);
      op.p_begin = static_cast<std::uint32_t>(pair_pool_.size());
      std::size_t j = i + 1;
      for (; j < cmds.size(); ++j) {
        const auto* e = std::get_if<CmdEntangle>(&cmds[j]);
        if (e == nullptr || (e->a != w && e->b != w)) break;
        pair_pool_.push_back({slot(e->a), slot(e->b)});
      }
      op.p_end = static_cast<std::uint32_t>(pair_pool_.size());
      const auto* m =
          j < cmds.size() ? std::get_if<CmdMeasure>(&cmds[j]) : nullptr;
      if (m != nullptr && m->wire == w) {
        // The gadget block: the fresh wire itself is measured next.
        op.kind = OpKind::PrepCzMeasure;
        fill_measure(op, *m);
        i = j + 1;
      } else if (m != nullptr) {
        // The teleport block: another wire is measured right after the
        // prep (the J steps of the mixer chains).  `a` keeps the fresh
        // slot; fill_measure sets the measured slot, then move it to b.
        op.kind = OpKind::PrepCzTeleport;
        const std::int32_t fresh = op.a;
        fill_measure(op, *m);
        op.b = op.a;
        op.a = fresh;
        i = j + 1;
      } else {
        op.kind = op.p_begin == op.p_end ? OpKind::Prep : OpKind::PrepCz;
        i = j;
      }
    } else if (std::holds_alternative<CmdEntangle>(cmds[i])) {
      op.p_begin = static_cast<std::uint32_t>(pair_pool_.size());
      while (i < cmds.size() &&
             pair_pool_.size() - op.p_begin < kCzGroupChunk) {
        const auto* e = std::get_if<CmdEntangle>(&cmds[i]);
        if (e == nullptr) break;
        pair_pool_.push_back({slot(e->a), slot(e->b)});
        ++i;
      }
      op.p_end = static_cast<std::uint32_t>(pair_pool_.size());
      if (op.p_end - op.p_begin == 1) {
        op.kind = OpKind::Entangle;
        op.a = pair_pool_.back().a;
        op.b = pair_pool_.back().b;
      } else {
        op.kind = OpKind::CzGroup;
      }
    } else if (const auto* m = std::get_if<CmdMeasure>(&cmds[i])) {
      op.kind = OpKind::Measure;
      fill_measure(op, *m);
      ++i;
    } else {
      // A run of X/Z corrections composes into one Pauli-product pass.
      op.kind = OpKind::PauliGroup;
      op.p_begin = static_cast<std::uint32_t>(pauli_pool_.size());
      for (; i < cmds.size(); ++i) {
        Correction corr{};
        if (const auto* x = std::get_if<CmdCorrectX>(&cmds[i])) {
          corr.is_z = 0;
          corr.slot = slot(x->wire);
          corr.wire = x->wire;
          flatten(x->domain, corr.d_begin, corr.d_end);
        } else if (const auto* z = std::get_if<CmdCorrectZ>(&cmds[i])) {
          corr.is_z = 1;
          corr.slot = slot(z->wire);
          corr.wire = z->wire;
          flatten(z->domain, corr.d_begin, corr.d_end);
        } else {
          break;
        }
        pauli_pool_.push_back(corr);
      }
      op.p_end = static_cast<std::uint32_t>(pauli_pool_.size());
    }
    tape_.push_back(op);
  }

  for (const int w : p.outputs()) {
    output_wires_.push_back(w);
    output_slots_.push_back(slot(w));
  }
}

PatternExecutor::PatternExecutor(std::shared_ptr<const CompiledPattern> compiled,
                                 ExecOptions options)
    : compiled_(std::move(compiled)),
      options_(std::move(options)),
      dsv_(options_.precision) {
  MBQ_REQUIRE(compiled_ != nullptr, "PatternExecutor needs a compiled pattern");
  MBQ_REQUIRE(options_.entangler_noise >= 0.0 &&
                  options_.entangler_noise <= 1.0,
              "noise probability out of range: " << options_.entangler_noise);
  outcomes_.reserve(static_cast<std::size_t>(compiled_->num_measurements()));
}

RunResult PatternExecutor::run(Rng& rng) { return execute(&rng, nullptr); }

PatternExecutor::SampledShot PatternExecutor::run_sample(Rng& rng) {
  execute(&rng, nullptr, /*gather_output=*/false);
  // Readout draws AFTER the full run, exactly like sampling from the
  // gathered output_state would.  The gather table is refreshed in
  // place against the final layout — same size every shot, so its
  // storage is reused and the steady-state shot stays allocation-free.
  const real u = rng.uniform();
  dsv_.fill_gather_table(compiled_->output_slots_, gather_);
  return {dsv_.sample_in_order(gather_, u), dsv_.peak_live()};
}

RunResult PatternExecutor::run_forced(const std::vector<int>& forced) {
  MBQ_REQUIRE(options_.entangler_noise == 0.0,
              "forced runs are incompatible with entangler noise (noise "
              "draws would change branch statistics)");
  MBQ_REQUIRE(static_cast<int>(forced.size()) == compiled_->num_measurements(),
              "forced outcomes size " << forced.size()
                                      << " != measurement count "
                                      << compiled_->num_measurements());
  return execute(nullptr, forced.data());
}

RunResult PatternExecutor::run_forced(std::uint64_t branch) {
  const int m = compiled_->num_measurements();
  MBQ_REQUIRE(m <= 64, "branch word covers at most 64 measurements");
  forced_bits_.resize(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i)
    forced_bits_[static_cast<std::size_t>(i)] = get_bit(branch, i);
  return run_forced(forced_bits_);
}

RunResult PatternExecutor::execute(Rng* rng, const int* forced,
                                   bool gather_output) {
  const CompiledPattern& cp = *compiled_;
  dsv_.reset();
  outcomes_.clear();
  RunResult result;

  for (std::size_t i = 0; i < cp.input_slots_.size(); ++i) {
    const auto it = options_.input_states.find(cp.input_wires_[i]);
    if (it == options_.input_states.end()) {
      dsv_.add_wire(cp.input_slots_[i], /*plus=*/true);
    } else {
      dsv_.add_wire_state(cp.input_slots_[i], it->second.first,
                          it->second.second);
    }
  }

  const real noise = options_.entangler_noise;
  // Forced runs pass no generator; nothing draws when every outcome is
  // forced, so an idle stand-in keeps the calls well-formed.
  Rng idle(0);
  Rng& gen = rng == nullptr ? idle : *rng;

  // Position mask over a fused op's CZ partners.  Repeated partners
  // XOR-cancel, exactly as two sequential CZs on the same pair would.
  auto partner_mask = [&](const CompiledPattern::Op& op) {
    std::uint64_t mask = 0;
    for (std::uint32_t k = op.p_begin; k < op.p_end; ++k) {
      const CompiledPattern::CzPair& pr = cp.pair_pool_[k];
      const int partner = pr.a == op.a ? pr.b : pr.a;
      mask ^= std::uint64_t{1} << dsv_.bit_position(partner);
    }
    return mask;
  };
  // Noisy runs replay a fused op's source CZs one by one: the noise rng
  // draws per E command, in command order, like the interpreter.
  auto noisy_czs = [&](const CompiledPattern::Op& op) {
    for (std::uint32_t k = op.p_begin; k < op.p_end; ++k) {
      const CompiledPattern::CzPair& pr = cp.pair_pool_[k];
      dsv_.apply_cz_depolarize(pr.a, pr.b, noise, gen);
    }
  };
  enum class MeasureVia { Plain, FusedGadget, FusedTeleport };
  auto run_measure = [&](const CompiledPattern::Op& op, MeasureVia via) {
    const int s = cp.eval_signals(op.s_begin, op.s_end, outcomes_);
    const int t = cp.eval_signals(op.t_begin, op.t_end, outcomes_);
    const auto m = static_cast<std::size_t>(op.meas);
    const Matrix& basis = s ? cp.basis_neg_[m] : cp.basis_pos_[m];
    const int f = forced == nullptr ? -1 : forced[op.meas];
    int raw;
    switch (via) {
      case MeasureVia::FusedGadget:
        raw = dsv_.prep_cz_measure(op.a, partner_mask(op), basis, gen, f);
        break;
      case MeasureVia::FusedTeleport:
        raw = dsv_.prep_cz_teleport_measure(op.a, partner_mask(op), op.b,
                                            basis, gen, f);
        break;
      default:
        // Plain measures (and the noisy fallback) target the slot the
        // lowering put in `a` for Measure ops and in `b` for teleports.
        raw = dsv_.measure_remove(
            op.kind == CompiledPattern::OpKind::PrepCzTeleport ? op.b : op.a,
            basis, gen, f);
        break;
    }
    outcomes_.push_back(raw ^ t);
  };

  for (const CompiledPattern::Op& op : cp.tape_) {
    switch (op.kind) {
      case CompiledPattern::OpKind::Prep:
        dsv_.add_wire(op.a, /*plus=*/true);
        break;
      case CompiledPattern::OpKind::PrepCz:
        if (noise > 0.0) {
          dsv_.add_wire(op.a, /*plus=*/true);
          noisy_czs(op);
        } else {
          dsv_.add_wire_plus_cz(op.a, partner_mask(op));
        }
        break;
      case CompiledPattern::OpKind::PrepCzMeasure:
        if (noise > 0.0) {
          dsv_.add_wire(op.a, /*plus=*/true);
          noisy_czs(op);
          run_measure(op, MeasureVia::Plain);
        } else {
          run_measure(op, MeasureVia::FusedGadget);
        }
        break;
      case CompiledPattern::OpKind::PrepCzTeleport:
        if (noise > 0.0) {
          dsv_.add_wire(op.a, /*plus=*/true);
          noisy_czs(op);
          run_measure(op, MeasureVia::Plain);
        } else {
          run_measure(op, MeasureVia::FusedTeleport);
        }
        break;
      case CompiledPattern::OpKind::Entangle:
        if (noise > 0.0) {
          dsv_.apply_cz_depolarize(op.a, op.b, noise, gen);
        } else {
          dsv_.apply_cz(op.a, op.b);
        }
        break;
      case CompiledPattern::OpKind::CzGroup:
        if (noise > 0.0) {
          noisy_czs(op);
        } else {
          std::uint64_t masks[kCzGroupChunk];
          int count = 0;
          for (std::uint32_t k = op.p_begin; k < op.p_end; ++k) {
            const CompiledPattern::CzPair& pr = cp.pair_pool_[k];
            masks[count++] = (std::uint64_t{1} << dsv_.bit_position(pr.a)) |
                             (std::uint64_t{1} << dsv_.bit_position(pr.b));
          }
          dsv_.apply_cz_masks(masks, count);
        }
        break;
      case CompiledPattern::OpKind::Measure:
        run_measure(op, MeasureVia::Plain);
        break;
      case CompiledPattern::OpKind::PauliGroup: {
        // Compose the fired corrections left to right into X^x with a
        // Z-phase mask and the sign their sequential order produces:
        // appending X_w maps x ^= m and flips the sign when m already
        // lies in the Z mask (Z X = -X Z); appending Z_w maps z ^= m.
        std::uint64_t xmask = 0, zmask = 0;
        bool negate = false;
        for (std::uint32_t k = op.p_begin; k < op.p_end; ++k) {
          const CompiledPattern::Correction& c = cp.pauli_pool_[k];
          const int v = cp.eval_signals(c.d_begin, c.d_end, outcomes_);
          if (!options_.apply_corrections) {
            (c.is_z ? result.pending_z : result.pending_x)[c.wire] ^= v;
            continue;
          }
          if (!v) continue;
          const std::uint64_t m = std::uint64_t{1}
                                  << dsv_.bit_position(c.slot);
          if (c.is_z) {
            zmask ^= m;
          } else {
            negate ^= parity64(m & zmask) != 0;
            xmask ^= m;
          }
        }
        dsv_.apply_pauli_masks(xmask, zmask, negate);
        break;
      }
    }
  }

  result.peak_live = dsv_.peak_live();
  if (gather_output) {
    // run_sample skips this copy too: its caller reads last_outcomes()
    // from the member, keeping the shot loop allocation-free.
    result.outcomes = outcomes_;
    dsv_.fill_gather_table(cp.output_slots_, gather_);
    result.output_state = dsv_.state_in_order(gather_);
  }
  return result;
}

PatternExecutor& thread_local_executor(
    const std::shared_ptr<const CompiledPattern>& compiled,
    const ExecOptions& options) {
  MBQ_REQUIRE(compiled != nullptr, "thread_local_executor needs a pattern");
  MBQ_REQUIRE(options.input_states.empty(),
              "thread_local_executor does not support input_states; "
              "construct a PatternExecutor directly");
  thread_local std::shared_ptr<const CompiledPattern> cached;
  thread_local std::unique_ptr<PatternExecutor> executor;
  if (cached != compiled || !(executor->options() == options)) {
    executor = std::make_unique<PatternExecutor>(compiled, options);
    cached = compiled;
  }
  return *executor;
}

}  // namespace mbq::mbqc
