#include "mbq/mbqc/flow.h"

#include <set>

namespace mbq::mbqc {

std::optional<CausalFlow> find_causal_flow(const OpenGraph& og) {
  const int n = og.num_vertices();
  for (int v = 0; v < n; ++v) {
    if (og.measured[v] && og.plane[v] != MeasBasis::XY &&
        og.plane[v] != MeasBasis::X)
      return std::nullopt;
  }
  CausalFlow flow;
  flow.f.assign(n, -1);
  flow.layer.assign(n, 0);

  std::set<int> done;      // vertices whose measurement is "scheduled"
  std::set<int> correctors;  // vertices available as f-images
  const std::set<int> inputs(og.input_vertices.begin(),
                             og.input_vertices.end());
  for (int v : og.output_vertices) {
    done.insert(v);
    if (!inputs.count(v)) correctors.insert(v);
  }

  int layer = 1;
  int remaining = 0;
  for (int v = 0; v < n; ++v) remaining += og.measured[v];

  while (remaining > 0) {
    std::vector<std::pair<int, int>> found;  // (u, corrector)
    for (int v : correctors) {
      int unprocessed = -1;
      int count = 0;
      for (int w : og.g.neighbors(v)) {
        if (!done.count(w)) {
          unprocessed = w;
          ++count;
        }
      }
      if (count == 1 && og.measured[unprocessed]) {
        found.push_back({unprocessed, v});
      }
    }
    if (found.empty()) return std::nullopt;
    for (const auto& [u, v] : found) {
      if (done.count(u)) continue;  // already claimed this sweep
      flow.f[u] = v;
      flow.layer[u] = layer;
      done.insert(u);
      correctors.erase(v);
      if (!inputs.count(u)) correctors.insert(u);
      --remaining;
    }
    ++layer;
  }
  return flow;
}

bool verify_causal_flow(const OpenGraph& og, const CausalFlow& flow) {
  const int n = og.num_vertices();
  // "u before w" in the induced order: layer[u] > layer[w], or they are
  // unordered (same layer) which is only acceptable when the condition
  // does not relate them.  The defining conditions need strict order.
  auto strictly_before = [&](int u, int w) {
    return flow.layer[u] > flow.layer[w];
  };
  for (int u = 0; u < n; ++u) {
    if (!og.measured[u]) continue;
    const int v = flow.f[u];
    if (v < 0) return false;
    if (!og.g.has_edge(u, v)) return false;
    if (!strictly_before(u, v)) return false;
    for (int w : og.g.neighbors(v)) {
      if (w == u) continue;
      if (!strictly_before(u, w) && w != u) return false;
    }
  }
  return true;
}

}  // namespace mbq::mbqc
