#pragma once
// Measurement-order scheduling hints.
//
// Produced by the spec-level compiler (speccomp's "schedule" pass) and
// consumed by the pattern emitters — core::compile_* through
// core::CompileOptions, and the generic mbqc::pattern_from_circuit
// translator directly.  Hints never change WHAT a pattern computes, only
// when wires come alive, which bounds the executor's peak live width
// (and with it the 2^live statevector arena).
//
// Determinism note: deferring a prep changes the live dimension at
// earlier measurements, which perturbs Born probabilities at the ulp
// level — so hint-driven emission is bit-equal in DISTRIBUTION, not in
// stream.  That is why hints sit behind the opt-in "schedule" pass
// instead of the default pass set (see speccomp/speccomp.h): the default
// MBQ_SPEC_OPT=on contract is exact outcome-stream identity with =off.

namespace mbq::mbqc {

struct ScheduleHints {
  /// Defer each logical wire's initial |+> prep until just before its
  /// first entangling use instead of prepping all n upfront.  Wires a
  /// circuit touches late (or never, e.g. isolated MaxCut vertices
  /// during the phase layer) then stay out of the simulated register,
  /// keeping peak live wires below n+1 for the pattern prefix.
  bool defer_initial_preps = false;

  bool trivial() const noexcept { return !defer_initial_preps; }

  friend bool operator==(const ScheduleHints&, const ScheduleHints&) = default;
};

}  // namespace mbq::mbqc
