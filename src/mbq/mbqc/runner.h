#pragma once
// Pattern execution on the dynamic statevector.
//
// The runner walks the command list once, preparing wires lazily and
// dropping them on measurement, so memory tracks the LIVE wire count, not
// the total pattern width (a 100+ qubit pattern on a 10-vertex problem
// runs in a ~12-qubit simulator).  Branches can be sampled (Born rule) or
// forced, which lets tests enumerate every correction path explicitly —
// the determinism property of Sec. II-B is checked this way.

#include <optional>
#include <unordered_map>
#include <vector>

#include "mbq/common/rng.h"
#include "mbq/mbqc/pattern.h"
#include "mbq/sim/dynamic_statevector.h"

namespace mbq::mbqc {

struct RunOptions {
  /// Forced RAW outcomes per measurement (in command order).  Empty =>
  /// sample everything; otherwise must have one entry (0/1) per
  /// measurement.
  std::vector<int> forced;
  /// Apply X/Z correction commands (true) or skip them and report the
  /// byproduct instead (used by the classical post-processing mode).
  bool apply_corrections = true;
  /// Initial single-qubit states for input wires (wire -> (a0, a1)).
  /// Input wires without an entry start in |+>.
  std::unordered_map<int, std::pair<cplx, cplx>> input_states;
  /// Depolarizing noise: after every E command, each touched wire
  /// suffers a uniformly random Pauli with this probability.  Models the
  /// dominant (entangler) error channel; 0 = noiseless.  Incompatible
  /// with forced outcomes (noise changes branch statistics).
  real entangler_noise = 0.0;
  /// Statevector storage precision (sim/dynamic_statevector.h): F32 runs
  /// are deterministic within the precision, NOT bit-comparable to F64.
  Precision precision = Precision::F64;
};

struct RunResult {
  /// Recorded (post-t-flip) outcomes per measurement in command order.
  std::vector<int> outcomes;
  /// Final state of the output wires, ordered as pattern.outputs():
  /// output wire i <-> bit i.
  std::vector<cplx> output_state;
  /// Peak number of simultaneously live wires (the qubit-reuse metric).
  int peak_live = 0;
  /// Domains of skipped corrections, evaluated: for each output wire,
  /// whether an X / Z byproduct remains (only populated when
  /// apply_corrections == false).
  std::unordered_map<int, int> pending_x;
  std::unordered_map<int, int> pending_z;
};

/// Execute the pattern.  Thin wrapper over the compiled executor
/// (mbqc/compiled.h): compiles the pattern (which validates it) and runs
/// it once.  Repeated-shot callers should compile once and reuse a
/// PatternExecutor instead — that amortizes validation, command lowering
/// and basis construction across shots.
RunResult run(const Pattern& p, Rng& rng, const RunOptions& options = {});

/// Reference implementation: walk the command variant list directly,
/// validating and rebuilding measurement bases per call.  Semantically
/// and rng-stream-identical to run(); retained as the differential
/// oracle for the compiled executor (tests) and the "interpreted" column
/// of the benches.
RunResult run_interpreted(const Pattern& p, Rng& rng,
                          const RunOptions& options = {});

/// Convenience: run with every branch forced, for all 2^M branches if
/// M <= max_measurements, and return one RunResult per branch (compiled
/// once, executed 2^M times).  Throws if the pattern has more
/// measurements than max_measurements, if base.forced is non-empty (the
/// enumeration owns the forcing), or if base carries entangler noise —
/// noise draws would silently change branch statistics.
std::vector<RunResult> run_all_branches(const Pattern& p,
                                        int max_measurements = 12,
                                        const RunOptions& base = {});

}  // namespace mbq::mbqc
