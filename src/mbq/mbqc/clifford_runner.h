#pragma once
// Pattern execution on the stabilizer simulator.
//
// At Clifford parameter points (all measurement angles multiples of
// pi/2) every pattern measurement is a Pauli measurement, so the whole
// adaptive protocol runs on the tableau — resource states of hundreds or
// thousands of qubits become tractable (bench_stab_large).  Wires are
// mapped onto tableau qubits up front (no reuse; the tableau is cheap).

#include "mbq/common/rng.h"
#include "mbq/mbqc/pattern.h"
#include "mbq/stab/tableau.h"

namespace mbq::mbqc {

/// True if every measurement angle is a multiple of pi/2 (pattern
/// executable on a stabilizer simulator).
bool is_clifford_pattern(const Pattern& p);

struct CliffordRunResult {
  std::vector<int> outcomes;  // recorded outcomes, in command order
  /// Tableau of the full register after the run; output wires are the
  /// interesting qubits, the rest are collapsed ancillas.
  Tableau tableau;
  /// Tableau qubit index per output wire.
  std::vector<int> output_qubits;
};

/// Execute a Clifford pattern (throws if !is_clifford_pattern).  Input
/// wires are initialized to |+>.
CliffordRunResult run_clifford(const Pattern& p, Rng& rng);

}  // namespace mbq::mbqc
