#pragma once
// Scored benchmark reports (mbq::bench).
//
// A Report is the JSON artifact a corpus replay leaves behind: one row
// per instance with the fidelity scores (Hellinger / TVD / chi-squared
// against the exact reference distribution), the cost quality
// (mean cost, best cost, approximation ratio), and an order-sensitive
// FNV-1a digest of the raw outcome stream.  The digest is the
// bit-identity witness: two runs of the same corpus with the same seed
// — at any process count, local or through a daemon — must produce
// byte-identical digests, so `cmp report_a.json report_b.json` is a
// meaningful CI gate.
//
// Wall-clock fields (elapsed_ms, shots_per_sec) and execution-context
// fields (processes, endpoint) are recorded only when
// RunOptions::timing is on; a `--deterministic` run omits them, so the
// remaining document contains exclusively fields that are contractually
// identical across equivalent runs.
//
// Numbers: doubles are printed with 17 significant digits (bit-exact
// text round trip); u64 fingerprints/digests travel as hex strings
// (JSON numbers lose integer precision past 2^53); non-finite doubles
// (a chi-squared of an expected-zero cell) travel as the quoted strings
// "inf"/"-inf"/"nan".  read/from_json parse exactly what to_json emits
// and throw Error on anything malformed.

#include <cstdint>
#include <string>
#include <vector>

#include "mbq/bench/generators.h"
#include "mbq/common/types.h"

namespace mbq::bench {

struct InstanceResult {
  std::string id;
  Family family = Family::Sk;
  int num_qubits = 0;
  std::uint64_t shots = 0;
  std::uint64_t spec_fingerprint = 0;
  /// FNV-1a 64 over the little-endian u64 outcome stream, in shot order.
  std::uint64_t outcomes_fnv = 0;
  std::int64_t distinct_outcomes = 0;
  real hellinger_distance = 0.0;
  real hellinger_fidelity = 0.0;
  real tvd = 0.0;
  real chi_squared = 0.0;
  real mean_cost = 0.0;
  real best_cost = 0.0;
  real approximation_ratio = 0.0;
  // --- wall-clock (timing runs only; < 0 = not recorded) --------------
  real elapsed_ms = -1.0;
  real shots_per_sec = -1.0;
};

struct Report {
  std::string corpus;
  std::string backend;
  std::uint64_t seed = 0;
  real noise = 0.0;
  bool timing = false;
  // --- execution context (timing runs only) ---------------------------
  int processes = 0;
  std::string endpoint;

  std::vector<InstanceResult> instances;
};

std::string to_json(const Report& r);
Report report_from_json(const std::string& json);

void write_report(const std::string& path, const Report& r);
Report read_report(const std::string& path);

/// Per-family aggregate rows for the `score` subcommand.
struct FamilySummary {
  Family family = Family::Sk;
  int instances = 0;
  real mean_fidelity = 0.0;
  real min_fidelity = 0.0;
  real mean_ratio = 0.0;
};
std::vector<FamilySummary> summarize(const Report& r);

}  // namespace mbq::bench
