#include "mbq/bench/corpus.h"

#include <filesystem>
#include <fstream>
#include <set>

namespace mbq::bench {

namespace fs = std::filesystem;

std::vector<std::byte> encode_manifest(const Manifest& m) {
  ByteWriter out;
  out.u32(kManifestMagic);
  out.u32(kManifestVersion);
  out.str(m.name);
  out.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const ManifestEntry& e : m.entries) {
    out.str(e.id);
    out.u8(static_cast<std::uint8_t>(e.family));
    out.i32(e.num_qubits);
    out.u64(e.index);
    out.f64_vec(e.angles.gamma);
    out.f64_vec(e.angles.beta);
    out.u64(e.shots);
    out.u64(e.spec_fingerprint);
    out.str(e.spec_file);
  }
  return out.take();
}

Manifest decode_manifest(std::span<const std::byte> frame) {
  ByteReader in(frame);
  const std::uint32_t magic = in.u32();
  MBQ_REQUIRE(magic == kManifestMagic,
              "corpus manifest: bad magic 0x" << std::hex << magic
                                              << " (not a manifest?)");
  const std::uint32_t version = in.u32();
  MBQ_REQUIRE(version == kManifestVersion,
              "corpus manifest: unsupported version "
                  << version << " (this build reads version "
                  << kManifestVersion << ")");
  Manifest m;
  m.name = in.str();
  const std::uint32_t count = in.u32();
  std::set<std::string> seen;
  m.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ManifestEntry e;
    e.id = in.str();
    MBQ_REQUIRE(!e.id.empty(), "corpus manifest: entry " << i
                                                         << " has an empty id");
    MBQ_REQUIRE(seen.insert(e.id).second,
                "corpus manifest: duplicate instance id '" << e.id << "'");
    const std::uint8_t family = in.u8();
    MBQ_REQUIRE(family <= static_cast<std::uint8_t>(Family::Grid),
                "corpus manifest: unknown family tag "
                    << static_cast<int>(family) << " in '" << e.id << "'");
    e.family = static_cast<Family>(family);
    e.num_qubits = in.i32();
    MBQ_REQUIRE(e.num_qubits >= 1, "corpus manifest: bad qubit count "
                                       << e.num_qubits << " in '" << e.id
                                       << "'");
    e.index = in.u64();
    e.angles.gamma = in.f64_vec();
    e.angles.beta = in.f64_vec();
    MBQ_REQUIRE(e.angles.gamma.size() == e.angles.beta.size(),
                "corpus manifest: '" << e.id << "' has "
                                     << e.angles.gamma.size() << " gamma but "
                                     << e.angles.beta.size() << " beta");
    e.shots = in.u64();
    MBQ_REQUIRE(e.shots >= 1,
                "corpus manifest: '" << e.id << "' has a zero shot budget");
    e.spec_fingerprint = in.u64();
    e.spec_file = in.str();
    MBQ_REQUIRE(!e.spec_file.empty(),
                "corpus manifest: '" << e.id << "' names no spec file");
    m.entries.push_back(std::move(e));
  }
  MBQ_REQUIRE(in.done(), "corpus manifest: " << in.remaining()
                                             << " trailing bytes");
  return m;
}

namespace {

void write_file(const fs::path& path, std::span<const std::byte> bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  MBQ_REQUIRE(os.good(), "cannot open '" << path.string() << "' for writing");
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  MBQ_REQUIRE(os.good(), "short write to '" << path.string() << "'");
}

std::vector<std::byte> read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  MBQ_REQUIRE(is.good(), "cannot open '" << path.string() << "' for reading");
  const std::streamsize size = is.tellg();
  is.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  is.read(reinterpret_cast<char*>(bytes.data()), size);
  MBQ_REQUIRE(is.good(), "short read from '" << path.string() << "'");
  return bytes;
}

}  // namespace

void write_corpus(const std::string& dir, const Corpus& corpus) {
  const fs::path root(dir);
  fs::create_directories(root / "instances");
  Manifest manifest;
  manifest.name = corpus.name;
  manifest.entries.reserve(corpus.instances.size());
  for (const Instance& inst : corpus.instances) {
    MBQ_REQUIRE(inst.spec.serializable(),
                "corpus instance '" << inst.id
                                    << "' is not serializable (CustomCircuit "
                                       "workloads cannot enter a corpus)");
    ManifestEntry e;
    e.id = inst.id;
    e.family = inst.family;
    e.num_qubits = inst.num_qubits;
    e.index = inst.index;
    e.angles = inst.angles;
    e.shots = inst.shots;
    e.spec_fingerprint = api::spec_fingerprint(inst.spec);
    e.spec_file = "instances/" + inst.id + ".spec";
    write_file(root / e.spec_file, api::serialize_spec(inst.spec));
    manifest.entries.push_back(std::move(e));
  }
  // The decoder enforces id uniqueness and per-entry sanity; validate at
  // write time so a bad corpus fails here, not at first read.
  const std::vector<std::byte> frame = encode_manifest(manifest);
  decode_manifest(frame);
  write_file(root / kManifestFile, frame);
}

Corpus read_corpus(const std::string& dir) {
  const fs::path root(dir);
  const Manifest manifest =
      decode_manifest(read_file(root / kManifestFile));
  Corpus corpus;
  corpus.name = manifest.name;
  corpus.instances.reserve(manifest.entries.size());
  for (const ManifestEntry& e : manifest.entries) {
    const std::vector<std::byte> frame = read_file(root / e.spec_file);
    Instance inst;
    inst.id = e.id;
    inst.family = e.family;
    inst.num_qubits = e.num_qubits;
    inst.index = e.index;
    inst.angles = e.angles;
    inst.shots = e.shots;
    inst.spec = api::parse_spec(frame);
    const std::uint64_t fp = api::spec_fingerprint(inst.spec);
    MBQ_REQUIRE(fp == e.spec_fingerprint,
                "corpus instance '"
                    << e.id << "': spec file " << e.spec_file
                    << " fingerprints to " << fp
                    << " but the manifest promises " << e.spec_fingerprint
                    << " — the corpus is corrupt or was hand-edited");
    MBQ_REQUIRE(inst.spec.cost.num_qubits() == e.num_qubits,
                "corpus instance '" << e.id << "': spec has "
                                    << inst.spec.cost.num_qubits()
                                    << " qubits, manifest says "
                                    << e.num_qubits);
    corpus.instances.push_back(std::move(inst));
  }
  return corpus;
}

}  // namespace mbq::bench
