#pragma once
// The on-disk benchmark corpus (mbq::bench).
//
// A corpus is a directory:
//
//   corpus/
//     manifest.mbqb        binary manifest (common/serialize.h framing)
//     instances/<id>.spec  one api::WorkloadSpec codec frame per instance
//
// The manifest carries everything the replay harness needs WITHOUT
// decoding specs — id, family, size, replay angles, shot budget — plus
// each instance's api::spec_fingerprint.  read_corpus() re-fingerprints
// every spec frame it loads and refuses a mismatch, so a corrupted or
// hand-edited spec file can never be silently scored as the workload
// the manifest promised.
//
// The format is versioned (magic + version word up front); decode
// never trusts the frame — truncation, a wrong magic, an unknown
// version, an unknown family tag, or duplicate ids all throw Error.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mbq/api/workload_spec.h"
#include "mbq/bench/generators.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::bench {

inline constexpr std::uint32_t kManifestMagic = 0x4251424D;  // "MBQB"
inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr const char* kManifestFile = "manifest.mbqb";

/// One corpus member: a serializable workload plus its replay recipe.
struct Instance {
  std::string id;  // unique within the corpus, e.g. "sk-n8-i0"
  Family family = Family::Sk;
  int num_qubits = 0;
  std::uint64_t index = 0;  // generator stream index (provenance)
  qaoa::Angles angles;      // replay angles (pre-optimized or ramp)
  std::uint64_t shots = 0;  // default shot budget for scoring runs
  api::WorkloadSpec spec;
};

struct Corpus {
  std::string name;
  std::vector<Instance> instances;
};

/// Manifest-only view of an instance (spec still on disk).
struct ManifestEntry {
  std::string id;
  Family family = Family::Sk;
  int num_qubits = 0;
  std::uint64_t index = 0;
  qaoa::Angles angles;
  std::uint64_t shots = 0;
  std::uint64_t spec_fingerprint = 0;
  std::string spec_file;  // relative to the corpus directory
};

struct Manifest {
  std::string name;
  std::vector<ManifestEntry> entries;
};

/// Exact binary manifest codec.  encode emits magic + version first;
/// decode validates magic/version/family tags/id uniqueness and rejects
/// trailing bytes — a malformed frame always throws Error.
std::vector<std::byte> encode_manifest(const Manifest& m);
Manifest decode_manifest(std::span<const std::byte> frame);

/// Write `corpus` under `dir` (created if missing, manifest + one spec
/// frame per instance).  Instance ids must be unique and specs
/// serializable; angles travel as IEEE-754 bits, so a written corpus
/// replays bit-identically anywhere.
void write_corpus(const std::string& dir, const Corpus& corpus);

/// Load a corpus directory: decode the manifest, load + parse every
/// spec frame, and verify each against its manifest fingerprint (a
/// mismatch — corruption, tampering, or a stale manifest — is a hard
/// Error naming the instance).
Corpus read_corpus(const std::string& dir);

}  // namespace mbq::bench
