#include "mbq/bench/generators.h"

#include <cmath>

#include "mbq/api/workload.h"
#include "mbq/graph/generators.h"

namespace mbq::bench {

std::string family_name(Family f) {
  switch (f) {
    case Family::Sk: return "sk";
    case Family::ErdosRenyi: return "er";
    case Family::Regular: return "regular";
    case Family::Grid: return "grid";
  }
  throw Error("unknown bench family tag " +
              std::to_string(static_cast<int>(f)));
}

Family family_from_name(const std::string& name) {
  if (name == "sk") return Family::Sk;
  if (name == "er") return Family::ErdosRenyi;
  if (name == "regular") return Family::Regular;
  if (name == "grid") return Family::Grid;
  throw Error("unknown bench family '" + name +
              "' (known: sk, er, regular, grid)");
}

api::WorkloadSpec sk_instance(int n, SkCouplings couplings, Rng& rng) {
  MBQ_REQUIRE(n >= 2, "SK instance needs n >= 2, got " << n);
  const Graph g = complete_graph(n);
  std::vector<real> weights;
  weights.reserve(g.edges().size());
  for (std::size_t e = 0; e < g.edges().size(); ++e)
    weights.push_back(couplings == SkCouplings::PlusMinusOne
                          ? (rng.coin() ? 1.0 : -1.0)
                          : rng.normal());
  return api::Workload::maxcut_weighted(g, weights).spec();
}

api::WorkloadSpec erdos_renyi_instance(int n, int m, Rng& rng) {
  MBQ_REQUIRE(n >= 2, "ER instance needs n >= 2, got " << n);
  return api::Workload::maxcut(random_gnm_graph(n, m, rng)).spec();
}

api::WorkloadSpec regular_instance(int n, int d, Rng& rng) {
  return api::Workload::maxcut(random_regular_graph(n, d, rng)).spec();
}

api::WorkloadSpec grid_instance(int rows, int cols, Rng& rng) {
  MBQ_REQUIRE(rows >= 1 && cols >= 1 && rows * cols >= 2,
              "grid instance needs >= 2 vertices, got " << rows << "x"
                                                        << cols);
  const Graph g = grid_graph(rows, cols);
  std::vector<real> weights;
  weights.reserve(g.edges().size());
  for (std::size_t e = 0; e < g.edges().size(); ++e)
    weights.push_back(rng.coin() ? 1.0 : -1.0);
  return api::Workload::maxcut_weighted(g, weights).spec();
}

api::WorkloadSpec make_instance(Family family, int n, std::uint64_t index,
                                std::uint64_t seed) {
  MBQ_REQUIRE(n >= 2, "bench instance needs n >= 2, got " << n);
  // One decorrelated stream per (family, index) pair; n is baked into
  // the draws themselves, so every (family, n, index, seed) quadruple is
  // reproducible in isolation.
  Rng rng =
      Rng(seed).stream(static_cast<std::uint64_t>(family)).stream(index);
  switch (family) {
    case Family::Sk:
      return sk_instance(n, SkCouplings::PlusMinusOne, rng);
    case Family::ErdosRenyi: {
      const std::int64_t max_m = static_cast<std::int64_t>(n) * (n - 1) / 2;
      const int m = static_cast<int>(
          std::min<std::int64_t>(2 * static_cast<std::int64_t>(n), max_m));
      return erdos_renyi_instance(n, m, rng);
    }
    case Family::Regular: {
      int d = n <= 3 ? n - 1 : 3;
      if ((static_cast<std::int64_t>(n) * d) % 2 != 0) ++d;
      return regular_instance(n, d, rng);
    }
    case Family::Grid: {
      int rows = static_cast<int>(std::sqrt(static_cast<double>(n)));
      while (rows > 1 && n % rows != 0) --rows;
      return grid_instance(rows, n / rows, rng);
    }
  }
  throw Error("unknown bench family tag " +
              std::to_string(static_cast<int>(family)));
}

}  // namespace mbq::bench
