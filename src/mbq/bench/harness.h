#pragma once
// The corpus replay harness (mbq::bench).
//
// run_corpus() replays every instance of a corpus through one execution
// configuration — any registered backend, optionally sharded across N
// worker processes or dispatched to a running mbqd daemon — and scores
// each sampled distribution against its exact noiseless reference
// (distance.h).  The whole replay rides the Session determinism
// contract: outcome streams (and therefore every score and digest in
// the report) are bit-identical at every process count and across
// local-vs-daemon execution; only the wall-clock fields differ.
//
// This is the layer that finally exercises the serving daemon, the
// shard fleet, the entangler-noise knob, and the SIMD kernels under one
// reproducible workload — point a load generator at a corpus directory
// and compare reports.

#include <functional>
#include <string>

#include "mbq/bench/corpus.h"
#include "mbq/bench/report.h"

namespace mbq::bench {

struct RunOptions {
  std::string backend = "router";
  /// Worker processes per instance replay (Session semantics: 0 reads
  /// MBQ_NUM_PROCESSES, 1 never shards, >= 2 shards).
  int processes = 1;
  /// Non-empty: execute on a running mbqd at this endpoint instead of
  /// session-owned processes (never a silent fallback).
  std::string endpoint;
  /// Explicit mbq_worker path for sharded runs (empty = auto-resolve).
  std::string worker_path;
  /// Session seed; one corpus replay = one seed.
  std::uint64_t seed = 0xBE7C45EEDULL;
  /// Extra entangler noise applied to EVERY instance (fidelity-vs-noise
  /// sweeps re-run the same corpus at increasing levels).  0 = replay
  /// the specs as stored.
  real noise = 0.0;
  /// Overrides every instance's manifest shot budget when non-zero.
  std::uint64_t shots_override = 0;
  /// Record wall-clock + execution-context fields in the report.  OFF
  /// yields a fully deterministic document (see report.h).
  bool timing = true;
  /// Per-instance completion hook (CLI progress lines); may be empty.
  std::function<void(const InstanceResult&)> progress;
};

/// Replay + score the whole corpus; throws Error on the first instance
/// whose execution or scoring fails (an unreachable daemon, a backend
/// that cannot run an instance, ...).
Report run_corpus(const Corpus& corpus, const RunOptions& options);

}  // namespace mbq::bench
