#include "mbq/bench/distance.h"

#include <cmath>
#include <limits>

#include "mbq/sim/statevector.h"

namespace mbq::bench {

SparseDist normalize(const SparseHist& counts) {
  MBQ_REQUIRE(!counts.empty(), "cannot normalize an empty histogram");
  std::int64_t total = 0;
  for (const auto& [x, c] : counts) {
    MBQ_REQUIRE(c >= 0, "negative count " << c << " for outcome " << x);
    total += c;
  }
  MBQ_REQUIRE(total > 0, "cannot normalize an all-zero histogram");
  SparseDist dist;
  for (const auto& [x, c] : counts)
    if (c > 0)
      dist[x] = static_cast<real>(c) / static_cast<real>(total);
  return dist;
}

real bhattacharyya(const SparseDist& p, const SparseDist& q) {
  // Only outcomes in BOTH supports contribute to sum sqrt(p q).
  real bc = 0.0;
  for (const auto& [x, px] : p) {
    const auto it = q.find(x);
    if (it != q.end()) bc += std::sqrt(px * it->second);
  }
  // Guard accumulated rounding: BC is a probability overlap, <= 1.
  return std::min<real>(bc, 1.0);
}

real hellinger(const SparseDist& p, const SparseDist& q) {
  return std::sqrt(std::max<real>(0.0, 1.0 - bhattacharyya(p, q)));
}

real hellinger_fidelity(const SparseDist& p, const SparseDist& q) {
  const real bc = bhattacharyya(p, q);
  return bc * bc;
}

real tvd(const SparseDist& p, const SparseDist& q) {
  real sum = 0.0;
  for (const auto& [x, px] : p) {
    const auto it = q.find(x);
    sum += std::abs(px - (it == q.end() ? 0.0 : it->second));
  }
  for (const auto& [x, qx] : q)
    if (p.find(x) == p.end()) sum += qx;
  return 0.5 * sum;
}

real chi_squared(const SparseHist& observed, const SparseDist& expected) {
  std::int64_t total = 0;
  for (const auto& [x, c] : observed) {
    MBQ_REQUIRE(c >= 0, "negative count " << c << " for outcome " << x);
    total += c;
  }
  MBQ_REQUIRE(total > 0, "chi_squared needs at least one observation");
  for (const auto& [x, c] : observed)
    if (c > 0 && expected.find(x) == expected.end())
      return std::numeric_limits<real>::infinity();
  real stat = 0.0;
  for (const auto& [x, qx] : expected) {
    if (qx <= 0.0) continue;
    const auto it = observed.find(x);
    const real o = it == observed.end() ? 0.0 : static_cast<real>(it->second);
    const real e = static_cast<real>(total) * qx;
    const real d = o - e;
    stat += d * d / e;
  }
  return stat;
}

SparseDist reference_distribution(const api::Workload& w,
                                  const qaoa::Angles& a, real cutoff) {
  MBQ_REQUIRE(cutoff >= 0.0, "negative probability cutoff " << cutoff);
  MBQ_REQUIRE(w.num_qubits() <= kExactReferenceMaxQubits,
              "exact-reference scoring is statevector-bounded: "
                  << w.num_qubits() << " qubits exceeds the "
                  << kExactReferenceMaxQubits
                  << "-qubit cap (score such instances against sampled "
                     "baselines instead)");
  const api::Workload* ideal = &w;
  api::Workload stripped = w;
  if (w.entangler_noise() != 0.0) {
    // The reference is the ideal device: strip the noise knob before the
    // statevector execution (reference_state would otherwise still be
    // noiseless, but an ideal backend is entitled to reject a noisy
    // workload up front — make the intent explicit).
    api::WorkloadSpec spec = w.spec();
    spec.entangler_noise = 0.0;
    stripped = api::Workload::from_spec(std::move(spec));
    ideal = &stripped;
  }
  const Statevector psi = ideal->reference_state(a);
  SparseDist dist;
  const auto& amps = psi.amplitudes();
  for (std::uint64_t x = 0; x < amps.size(); ++x) {
    const real p = std::norm(amps[x]);
    if (p > cutoff) dist[x] = p;
  }
  return dist;
}

real best_cost(const api::Workload& w) {
  const auto table = w.cost_table();
  real best = -std::numeric_limits<real>::infinity();
  for (const real c : *table) best = std::max(best, c);
  return best;
}

real approximation_ratio(real mean_cost, real best_cost) {
  if (std::abs(best_cost) < 1e-12) return 0.0;
  return mean_cost / best_cost;
}

}  // namespace mbq::bench
