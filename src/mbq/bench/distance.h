#pragma once
// Distribution distances over sparse histograms (mbq::bench).
//
// The fidelity score of the benchmark harness, in the SupermarQ style:
// sample a workload on some backend (possibly noisy, possibly a real
// fleet), aggregate the outcomes into a sparse histogram, and compare
// against the exact reference distribution of the ideal statevector
// execution.  Sparse maps throughout — memory scales with the number of
// distinct outcomes, never 2^n, so the toolkit keeps working exactly
// where SampleResult::counts() must refuse (n > 24).
//
// Conventions: distributions are probability maps (values sum to ~1;
// absent keys are exact zeros).  All distances treat the union of the
// two supports as the outcome space.

#include <cstdint>
#include <map>

#include "mbq/api/workload.h"
#include "mbq/common/types.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::bench {

using SparseHist = std::map<std::uint64_t, std::int64_t>;  // counts
using SparseDist = std::map<std::uint64_t, real>;          // probabilities

/// Counts -> empirical probabilities.  Throws on an empty histogram or a
/// negative count.
SparseDist normalize(const SparseHist& counts);

/// Bhattacharyya coefficient BC = sum_x sqrt(p_x q_x), in [0, 1].
real bhattacharyya(const SparseDist& p, const SparseDist& q);

/// Hellinger distance H = sqrt(1 - BC), in [0, 1]; 0 iff p == q, 1 for
/// disjoint supports.
real hellinger(const SparseDist& p, const SparseDist& q);

/// Hellinger fidelity BC^2 = (1 - H^2)^2 — the SupermarQ device score:
/// 1 for identical distributions, 0 for disjoint supports.
real hellinger_fidelity(const SparseDist& p, const SparseDist& q);

/// Total variation distance (1/2) sum_x |p_x - q_x|, in [0, 1].
real tvd(const SparseDist& p, const SparseDist& q);

/// Pearson chi-squared statistic of observed counts against an expected
/// distribution: sum over expected's support of (o_x - N q_x)^2 / (N q_x)
/// with N the observed total.  Observed outcomes outside expected's
/// support make the statistic +infinity (an expected-zero cell was hit).
/// Throws on an empty observation set.
real chi_squared(const SparseHist& observed, const SparseDist& expected);

/// Exact-reference ceiling: the dense statevector the reference runs on
/// caps at 28 qubits (4 GiB of f64 amplitudes).  Corpus sizes up to the
/// large-n wall (n = 24) score exactly; beyond the cap the scorer
/// degrades with a loud Error naming this bound rather than attempting
/// a silent approximation.
inline constexpr int kExactReferenceMaxQubits = 28;

/// The exact output distribution of the workload's NOISELESS reference
/// execution at the given angles: entangler noise is stripped, the
/// statevector path runs, and amplitudes with |a|^2 > cutoff become
/// probabilities.  This is the "ideal device" side of every fidelity
/// score.  Throws Error (naming kExactReferenceMaxQubits) for workloads
/// too large to score exactly.
SparseDist reference_distribution(const api::Workload& w,
                                  const qaoa::Angles& a, real cutoff = 0.0);

/// Highest cost value over all bitstrings, via the workload's memoized
/// cost table — the denominator of the approximation ratio.
real best_cost(const api::Workload& w);

/// mean_cost / best_cost, the classic QAOA quality score.  Returns 0
/// when |best| is (near) zero — an edgeless instance has no meaningful
/// ratio — and clamps nothing: ratios can exceed 1 for negative means
/// against negative bests, which callers should treat as "inspect me".
real approximation_ratio(real mean_cost, real best_cost);

}  // namespace mbq::bench
