#include "mbq/bench/report.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "mbq/common/error.h"
#include "mbq/common/json.h"

namespace mbq::bench {

namespace {

// All reading/writing machinery lives in common/json.h, shared with the
// speccomp JSON spec codec.
using json::field;
using json::json_double;
using json::json_escape;
using json::json_hex64;
using json::JsonObject;
using json::JsonValue;
using json::parse_json;
using json::read_double;
using json::read_hex64;
using json::read_u64;

}  // namespace

std::string to_json(const Report& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"mbq_bench_report\": 1,\n";
  os << "  \"corpus\": \"" << json_escape(r.corpus) << "\",\n";
  os << "  \"backend\": \"" << json_escape(r.backend) << "\",\n";
  // Hex like the fingerprints: any 64-bit seed survives (JSON numbers
  // are exact only up to 2^53).
  os << "  \"seed\": " << json_hex64(r.seed) << ",\n";
  os << "  \"noise\": " << json_double(r.noise) << ",\n";
  os << "  \"timing\": " << (r.timing ? "true" : "false") << ",\n";
  if (r.timing) {
    os << "  \"processes\": " << r.processes << ",\n";
    os << "  \"endpoint\": \"" << json_escape(r.endpoint) << "\",\n";
  }
  os << "  \"instances\": [";
  for (std::size_t i = 0; i < r.instances.size(); ++i) {
    const InstanceResult& x = r.instances[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"id\": \"" << json_escape(x.id) << "\",\n";
    os << "      \"family\": \"" << family_name(x.family) << "\",\n";
    os << "      \"num_qubits\": " << x.num_qubits << ",\n";
    os << "      \"shots\": " << x.shots << ",\n";
    os << "      \"spec_fingerprint\": " << json_hex64(x.spec_fingerprint)
       << ",\n";
    os << "      \"outcomes_fnv\": " << json_hex64(x.outcomes_fnv) << ",\n";
    os << "      \"distinct_outcomes\": " << x.distinct_outcomes << ",\n";
    os << "      \"hellinger_distance\": " << json_double(x.hellinger_distance)
       << ",\n";
    os << "      \"hellinger_fidelity\": " << json_double(x.hellinger_fidelity)
       << ",\n";
    os << "      \"tvd\": " << json_double(x.tvd) << ",\n";
    os << "      \"chi_squared\": " << json_double(x.chi_squared) << ",\n";
    os << "      \"mean_cost\": " << json_double(x.mean_cost) << ",\n";
    os << "      \"best_cost\": " << json_double(x.best_cost) << ",\n";
    os << "      \"approximation_ratio\": "
       << json_double(x.approximation_ratio);
    if (r.timing) {
      os << ",\n";
      os << "      \"elapsed_ms\": " << json_double(x.elapsed_ms) << ",\n";
      os << "      \"shots_per_sec\": " << json_double(x.shots_per_sec)
         << "\n";
    } else {
      os << "\n";
    }
    os << "    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

Report report_from_json(const std::string& json) {
  const JsonValue root = parse_json(json);
  const JsonObject& obj = root.object();
  MBQ_REQUIRE(read_u64(field(obj, "mbq_bench_report")) == 1,
              "JSON report: unsupported report version");
  Report r;
  r.corpus = field(obj, "corpus").str();
  r.backend = field(obj, "backend").str();
  r.seed = read_hex64(field(obj, "seed"));
  r.noise = read_double(field(obj, "noise"));
  r.timing = field(obj, "timing").boolean();
  if (r.timing) {
    r.processes = static_cast<int>(read_u64(field(obj, "processes")));
    r.endpoint = field(obj, "endpoint").str();
  }
  for (const JsonValue& item : field(obj, "instances").array()) {
    const JsonObject& o = item.object();
    InstanceResult x;
    x.id = field(o, "id").str();
    x.family = family_from_name(field(o, "family").str());
    x.num_qubits = static_cast<int>(read_u64(field(o, "num_qubits")));
    x.shots = read_u64(field(o, "shots"));
    x.spec_fingerprint = read_hex64(field(o, "spec_fingerprint"));
    x.outcomes_fnv = read_hex64(field(o, "outcomes_fnv"));
    x.distinct_outcomes =
        static_cast<std::int64_t>(read_u64(field(o, "distinct_outcomes")));
    x.hellinger_distance = read_double(field(o, "hellinger_distance"));
    x.hellinger_fidelity = read_double(field(o, "hellinger_fidelity"));
    x.tvd = read_double(field(o, "tvd"));
    x.chi_squared = read_double(field(o, "chi_squared"));
    x.mean_cost = read_double(field(o, "mean_cost"));
    x.best_cost = read_double(field(o, "best_cost"));
    x.approximation_ratio = read_double(field(o, "approximation_ratio"));
    if (r.timing) {
      x.elapsed_ms = read_double(field(o, "elapsed_ms"));
      x.shots_per_sec = read_double(field(o, "shots_per_sec"));
    }
    r.instances.push_back(std::move(x));
  }
  return r;
}

void write_report(const std::string& path, const Report& r) {
  std::ofstream os(path, std::ios::trunc);
  MBQ_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  os << to_json(r);
  MBQ_REQUIRE(os.good(), "short write to '" << path << "'");
}

Report read_report(const std::string& path) {
  std::ifstream is(path);
  MBQ_REQUIRE(is.good(), "cannot open '" << path << "' for reading");
  std::ostringstream buf;
  buf << is.rdbuf();
  return report_from_json(buf.str());
}

std::vector<FamilySummary> summarize(const Report& r) {
  std::map<Family, FamilySummary> agg;
  for (const InstanceResult& x : r.instances) {
    FamilySummary& s = agg[x.family];
    if (s.instances == 0) {
      s.family = x.family;
      s.min_fidelity = x.hellinger_fidelity;
    }
    ++s.instances;
    s.mean_fidelity += x.hellinger_fidelity;
    s.min_fidelity = std::min(s.min_fidelity, x.hellinger_fidelity);
    s.mean_ratio += x.approximation_ratio;
  }
  std::vector<FamilySummary> out;
  for (auto& [family, s] : agg) {
    s.mean_fidelity /= s.instances;
    s.mean_ratio /= s.instances;
    out.push_back(s);
  }
  return out;
}

}  // namespace mbq::bench
