#include "mbq/bench/report.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <variant>

#include "mbq/common/error.h"

namespace mbq::bench {

namespace {

// --- writer ----------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// 17 significant digits: every finite double round-trips bit-exactly
/// through this text.  Non-finite values become quoted strings (JSON has
/// no inf/nan literals).
std::string json_double(real v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", static_cast<double>(v));
  return buf;
}

std::string json_hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "\"0x%016" PRIx64 "\"", v);
  return buf;
}

// --- minimal JSON reader ---------------------------------------------------
//
// Parses exactly the subset to_json emits (objects, arrays, strings,
// numbers, booleans) — enough to read our own reports back without a
// dependency.  Malformed input throws Error with a byte offset.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, real, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const std::string& str() const {
    MBQ_REQUIRE(is_string(), "JSON: expected a string");
    return std::get<std::string>(v);
  }
  real num() const {
    MBQ_REQUIRE(std::holds_alternative<real>(v), "JSON: expected a number");
    return std::get<real>(v);
  }
  bool boolean() const {
    MBQ_REQUIRE(std::holds_alternative<bool>(v), "JSON: expected a boolean");
    return std::get<bool>(v);
  }
  const JsonArray& array() const {
    MBQ_REQUIRE(std::holds_alternative<std::shared_ptr<JsonArray>>(v),
                "JSON: expected an array");
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  const JsonObject& object() const {
    MBQ_REQUIRE(std::holds_alternative<std::shared_ptr<JsonObject>>(v),
                "JSON: expected an object");
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = value();
    skip_ws();
    MBQ_REQUIRE(pos_ == text_.size(),
                "JSON: trailing garbage at byte " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    MBQ_REQUIRE(pos_ < text_.size(), "JSON: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    MBQ_REQUIRE(peek() == c, "JSON: expected '" << c << "' at byte " << pos_
                                                << ", got '" << peek()
                                                << "'");
    ++pos_;
  }

  bool try_consume(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return JsonValue{string()};
    if (try_consume("true")) return JsonValue{true};
    if (try_consume("false")) return JsonValue{false};
    if (try_consume("null")) return JsonValue{nullptr};
    return number();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      MBQ_REQUIRE(pos_ < text_.size(), "JSON: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      MBQ_REQUIRE(pos_ < text_.size(), "JSON: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': {
          MBQ_REQUIRE(pos_ + 4 <= text_.size(), "JSON: truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          break;
        }
        default:
          throw Error("JSON: unsupported escape '\\" + std::string(1, e) +
                      "'");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    MBQ_REQUIRE(pos_ > start, "JSON: expected a value at byte " << start);
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    MBQ_REQUIRE(end == tok.c_str() + tok.size(),
                "JSON: bad number '" << tok << "' at byte " << start);
    return JsonValue{static_cast<real>(v)};
  }

  JsonValue array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    while (true) {
      arr->push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{arr};
    }
  }

  JsonValue object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (true) {
      skip_ws();
      const std::string key = string();
      skip_ws();
      expect(':');
      (*obj)[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{obj};
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue& field(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  MBQ_REQUIRE(it != obj.end(), "JSON report: missing field '" << key << "'");
  return it->second;
}

/// Accepts the writer's double encoding: a number, or one of the quoted
/// non-finite markers.
real read_double(const JsonValue& v) {
  if (v.is_string()) {
    const std::string& s = v.str();
    if (s == "inf") return std::numeric_limits<real>::infinity();
    if (s == "-inf") return -std::numeric_limits<real>::infinity();
    if (s == "nan") return std::numeric_limits<real>::quiet_NaN();
    throw Error("JSON report: '" + s + "' is not a number");
  }
  return v.num();
}

std::uint64_t read_hex64(const JsonValue& v) {
  const std::string& s = v.str();
  MBQ_REQUIRE(s.size() > 2 && s[0] == '0' && s[1] == 'x',
              "JSON report: '" << s << "' is not a 0x hex string");
  char* end = nullptr;
  const std::uint64_t out = std::strtoull(s.c_str() + 2, &end, 16);
  MBQ_REQUIRE(end == s.c_str() + s.size(),
              "JSON report: bad hex string '" << s << "'");
  return out;
}

std::uint64_t read_u64(const JsonValue& v) {
  const real n = v.num();
  MBQ_REQUIRE(n >= 0 && n == std::floor(n) && n <= 9007199254740992.0,
              "JSON report: " << n << " is not an exact unsigned integer");
  return static_cast<std::uint64_t>(n);
}

}  // namespace

std::string to_json(const Report& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"mbq_bench_report\": 1,\n";
  os << "  \"corpus\": \"" << json_escape(r.corpus) << "\",\n";
  os << "  \"backend\": \"" << json_escape(r.backend) << "\",\n";
  // Hex like the fingerprints: any 64-bit seed survives (JSON numbers
  // are exact only up to 2^53).
  os << "  \"seed\": " << json_hex64(r.seed) << ",\n";
  os << "  \"noise\": " << json_double(r.noise) << ",\n";
  os << "  \"timing\": " << (r.timing ? "true" : "false") << ",\n";
  if (r.timing) {
    os << "  \"processes\": " << r.processes << ",\n";
    os << "  \"endpoint\": \"" << json_escape(r.endpoint) << "\",\n";
  }
  os << "  \"instances\": [";
  for (std::size_t i = 0; i < r.instances.size(); ++i) {
    const InstanceResult& x = r.instances[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"id\": \"" << json_escape(x.id) << "\",\n";
    os << "      \"family\": \"" << family_name(x.family) << "\",\n";
    os << "      \"num_qubits\": " << x.num_qubits << ",\n";
    os << "      \"shots\": " << x.shots << ",\n";
    os << "      \"spec_fingerprint\": " << json_hex64(x.spec_fingerprint)
       << ",\n";
    os << "      \"outcomes_fnv\": " << json_hex64(x.outcomes_fnv) << ",\n";
    os << "      \"distinct_outcomes\": " << x.distinct_outcomes << ",\n";
    os << "      \"hellinger_distance\": " << json_double(x.hellinger_distance)
       << ",\n";
    os << "      \"hellinger_fidelity\": " << json_double(x.hellinger_fidelity)
       << ",\n";
    os << "      \"tvd\": " << json_double(x.tvd) << ",\n";
    os << "      \"chi_squared\": " << json_double(x.chi_squared) << ",\n";
    os << "      \"mean_cost\": " << json_double(x.mean_cost) << ",\n";
    os << "      \"best_cost\": " << json_double(x.best_cost) << ",\n";
    os << "      \"approximation_ratio\": "
       << json_double(x.approximation_ratio);
    if (r.timing) {
      os << ",\n";
      os << "      \"elapsed_ms\": " << json_double(x.elapsed_ms) << ",\n";
      os << "      \"shots_per_sec\": " << json_double(x.shots_per_sec)
         << "\n";
    } else {
      os << "\n";
    }
    os << "    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

Report report_from_json(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  const JsonObject& obj = root.object();
  MBQ_REQUIRE(read_u64(field(obj, "mbq_bench_report")) == 1,
              "JSON report: unsupported report version");
  Report r;
  r.corpus = field(obj, "corpus").str();
  r.backend = field(obj, "backend").str();
  r.seed = read_hex64(field(obj, "seed"));
  r.noise = read_double(field(obj, "noise"));
  r.timing = field(obj, "timing").boolean();
  if (r.timing) {
    r.processes = static_cast<int>(read_u64(field(obj, "processes")));
    r.endpoint = field(obj, "endpoint").str();
  }
  for (const JsonValue& item : field(obj, "instances").array()) {
    const JsonObject& o = item.object();
    InstanceResult x;
    x.id = field(o, "id").str();
    x.family = family_from_name(field(o, "family").str());
    x.num_qubits = static_cast<int>(read_u64(field(o, "num_qubits")));
    x.shots = read_u64(field(o, "shots"));
    x.spec_fingerprint = read_hex64(field(o, "spec_fingerprint"));
    x.outcomes_fnv = read_hex64(field(o, "outcomes_fnv"));
    x.distinct_outcomes =
        static_cast<std::int64_t>(read_u64(field(o, "distinct_outcomes")));
    x.hellinger_distance = read_double(field(o, "hellinger_distance"));
    x.hellinger_fidelity = read_double(field(o, "hellinger_fidelity"));
    x.tvd = read_double(field(o, "tvd"));
    x.chi_squared = read_double(field(o, "chi_squared"));
    x.mean_cost = read_double(field(o, "mean_cost"));
    x.best_cost = read_double(field(o, "best_cost"));
    x.approximation_ratio = read_double(field(o, "approximation_ratio"));
    if (r.timing) {
      x.elapsed_ms = read_double(field(o, "elapsed_ms"));
      x.shots_per_sec = read_double(field(o, "shots_per_sec"));
    }
    r.instances.push_back(std::move(x));
  }
  return r;
}

void write_report(const std::string& path, const Report& r) {
  std::ofstream os(path, std::ios::trunc);
  MBQ_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  os << to_json(r);
  MBQ_REQUIRE(os.good(), "short write to '" << path << "'");
}

Report read_report(const std::string& path) {
  std::ifstream is(path);
  MBQ_REQUIRE(is.good(), "cannot open '" << path << "' for reading");
  std::ostringstream buf;
  buf << is.rdbuf();
  return report_from_json(buf.str());
}

std::vector<FamilySummary> summarize(const Report& r) {
  std::map<Family, FamilySummary> agg;
  for (const InstanceResult& x : r.instances) {
    FamilySummary& s = agg[x.family];
    if (s.instances == 0) {
      s.family = x.family;
      s.min_fidelity = x.hellinger_fidelity;
    }
    ++s.instances;
    s.mean_fidelity += x.hellinger_fidelity;
    s.min_fidelity = std::min(s.min_fidelity, x.hellinger_fidelity);
    s.mean_ratio += x.approximation_ratio;
  }
  std::vector<FamilySummary> out;
  for (auto& [family, s] : agg) {
    s.mean_fidelity /= s.instances;
    s.mean_ratio /= s.instances;
    out.push_back(s);
  }
  return out;
}

}  // namespace mbq::bench
