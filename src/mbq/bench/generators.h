#pragma once
// Benchmark-instance generators (mbq::bench).
//
// Four standard MaxCut families in the style of the SupermarQ QAOA
// proxy benchmark: Sherrington-Kirkpatrick (complete graph with random
// +-J or Gaussian couplings), Erdos-Renyi G(n, m), random d-regular,
// and hardware-grid (the 2D coupling map of planar devices, with +-J
// couplings).  Each generator consumes an explicit Rng and returns a
// serializable api::WorkloadSpec, so a corpus on disk is nothing but
// spec frames plus a manifest (corpus.h).
//
// Determinism: make_instance derives its generator as
// Rng(seed).stream(family).stream(index), so instance (family, n,
// index) of a corpus is a pure function of the corpus seed — two
// machines generating the same corpus get bit-identical specs (equal
// api::spec_fingerprint), which is what lets a scored report name
// instances by fingerprint and mean the same workload everywhere.

#include <cstdint>
#include <string>

#include "mbq/api/workload_spec.h"
#include "mbq/common/rng.h"

namespace mbq::bench {

enum class Family : std::uint8_t {
  Sk = 0,          // Sherrington-Kirkpatrick: K_n, random couplings
  ErdosRenyi = 1,  // G(n, m), unweighted
  Regular = 2,     // random d-regular (d = 3, or n-1 when n <= 3)
  Grid = 3,        // rows x cols hardware grid, +-1 couplings
};

/// "sk", "er", "regular", "grid".
std::string family_name(Family f);
/// Inverse of family_name; throws Error listing the known names.
Family family_from_name(const std::string& name);

enum class SkCouplings : std::uint8_t {
  PlusMinusOne = 0,  // J_uv in {-1, +1}, fair coin (the SupermarQ model)
  Gaussian = 1,      // J_uv ~ N(0, 1)
};

/// SK MaxCut on K_n with couplings drawn from rng (n draws in row-major
/// u < v edge order, matching Graph::edges()).
api::WorkloadSpec sk_instance(int n, SkCouplings couplings, Rng& rng);

/// Unweighted MaxCut on Erdos-Renyi G(n, m).
api::WorkloadSpec erdos_renyi_instance(int n, int m, Rng& rng);

/// Unweighted MaxCut on a random d-regular graph (n * d must be even).
api::WorkloadSpec regular_instance(int n, int d, Rng& rng);

/// Weighted MaxCut on the rows x cols grid with +-1 couplings — the
/// hardware-shaped family (planar coupling map, bounded degree 4).
api::WorkloadSpec grid_instance(int rows, int cols, Rng& rng);

/// Canonical corpus member: instance `index` of `family` at size n,
/// under the corpus seed.  Applies the family's default shape policy —
/// SK uses +-1 couplings, ER uses m = min(2n, n(n-1)/2) (dense at small
/// n, deliberately exercising random_gnm_graph's Fisher-Yates regime),
/// regular uses d = 3 (n-1 when n <= 3; n*d odd bumps d by one), grid
/// factors n into the most-square rows x cols with rows*cols == n.
/// Requires n >= 2.
api::WorkloadSpec make_instance(Family family, int n, std::uint64_t index,
                                std::uint64_t seed);

}  // namespace mbq::bench
