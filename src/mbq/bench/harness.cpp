#include "mbq/bench/harness.h"

#include <limits>

#include "mbq/api/api.h"
#include "mbq/bench/distance.h"
#include "mbq/common/serialize.h"
#include "mbq/common/timer.h"

namespace mbq::bench {

namespace {

/// Order-sensitive digest of the raw outcome stream: FNV-1a 64 over the
/// little-endian u64 outcomes in shot order.  Two replays produce equal
/// digests iff their outcome streams are bit-identical — the witness
/// the CI bit-identity gate compares.
std::uint64_t outcomes_digest(const api::SampleResult& result) {
  ByteWriter w;
  for (const api::Shot& s : result.shots) w.u64(s.x);
  return api::fnv1a64(w.data());
}

}  // namespace

Report run_corpus(const Corpus& corpus, const RunOptions& options) {
  MBQ_REQUIRE(options.noise >= 0.0 && options.noise <= 1.0,
              "noise level " << options.noise << " out of [0, 1]");
  Report report;
  report.corpus = corpus.name;
  report.backend = options.backend;
  report.seed = options.seed;
  report.noise = options.noise;
  report.timing = options.timing;
  if (options.timing) {
    report.processes = options.processes;
    report.endpoint = options.endpoint;
  }
  report.instances.reserve(corpus.instances.size());

  for (const Instance& inst : corpus.instances) {
    api::Workload workload = api::Workload::from_spec(inst.spec);
    if (options.noise != 0.0) workload.with_entangler_noise(options.noise);

    api::SessionOptions sopts;
    sopts.seed = options.seed;
    sopts.num_processes = options.processes;
    sopts.daemon_endpoint = options.endpoint;
    sopts.worker_path = options.worker_path;
    api::Session session(std::move(workload), options.backend, sopts);

    const std::uint64_t budget =
        options.shots_override != 0 ? options.shots_override : inst.shots;
    MBQ_REQUIRE(budget >= 1 &&
                    budget <= static_cast<std::uint64_t>(
                                  std::numeric_limits<int>::max()),
                "shot budget " << budget << " for '" << inst.id
                               << "' out of range");
    const int shots = static_cast<int>(budget);

    Timer timer;
    const api::SampleResult result = session.sample(inst.angles, shots);
    const real elapsed_ms = timer.milliseconds();

    const SparseHist counts = result.counts_map();
    const SparseDist sampled = normalize(counts);
    // The reference is always the ideal noiseless device — the session's
    // workload may carry the sweep noise, the reference never does.
    const SparseDist ideal =
        reference_distribution(session.workload(), inst.angles);

    InstanceResult row;
    row.id = inst.id;
    row.family = inst.family;
    row.num_qubits = inst.num_qubits;
    row.shots = budget;
    row.spec_fingerprint = api::spec_fingerprint(inst.spec);
    row.outcomes_fnv = outcomes_digest(result);
    row.distinct_outcomes = static_cast<std::int64_t>(counts.size());
    row.hellinger_distance = hellinger(sampled, ideal);
    row.hellinger_fidelity = hellinger_fidelity(sampled, ideal);
    row.tvd = tvd(sampled, ideal);
    row.chi_squared = chi_squared(counts, ideal);
    row.mean_cost = result.mean_cost();
    row.best_cost = best_cost(session.workload());
    row.approximation_ratio = approximation_ratio(row.mean_cost, row.best_cost);
    if (options.timing) {
      row.elapsed_ms = elapsed_ms;
      row.shots_per_sec =
          elapsed_ms > 0.0 ? static_cast<real>(shots) / (elapsed_ms * 1e-3)
                           : -1.0;
    }
    if (options.progress) options.progress(row);
    report.instances.push_back(std::move(row));
  }
  return report;
}

}  // namespace mbq::bench
