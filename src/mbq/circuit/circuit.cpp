#include "mbq/circuit/circuit.h"

#include <bit>
#include <sstream>
#include <unordered_set>

#include "mbq/common/error.h"
#include "mbq/linalg/unitaries.h"

namespace mbq {

std::string gate_kind_name(GateKind k) {
  switch (k) {
    case GateKind::H: return "H";
    case GateKind::X: return "X";
    case GateKind::Y: return "Y";
    case GateKind::Z: return "Z";
    case GateKind::S: return "S";
    case GateKind::Sdg: return "Sdg";
    case GateKind::T: return "T";
    case GateKind::Tdg: return "Tdg";
    case GateKind::Rx: return "Rx";
    case GateKind::Rz: return "Rz";
    case GateKind::Cz: return "CZ";
    case GateKind::Cx: return "CX";
    case GateKind::PhaseGadget: return "PG";
    case GateKind::ControlledExpX: return "CExpX";
  }
  return "?";
}

bool Gate::is_parameterized() const noexcept {
  switch (kind) {
    case GateKind::Rx:
    case GateKind::Rz:
    case GateKind::PhaseGadget:
    case GateKind::ControlledExpX:
      return true;
    default:
      return false;
  }
}

std::string Gate::str() const {
  std::ostringstream oss;
  oss << gate_kind_name(kind) << "(";
  for (std::size_t i = 0; i < qubits.size(); ++i)
    oss << (i ? "," : "") << qubits[i];
  if (is_parameterized()) oss << "; " << angle;
  if (kind == GateKind::ControlledExpX) oss << "; ctrl=" << ctrl_value;
  oss << ")";
  return oss.str();
}

Circuit::Circuit(int num_qubits) : n_(num_qubits) {
  MBQ_REQUIRE(num_qubits >= 1, "circuit needs >= 1 qubit, got " << num_qubits);
}

void Circuit::check_qubit(int q) const {
  MBQ_REQUIRE(q >= 0 && q < n_,
              "qubit " << q << " out of range [0," << n_ << ")");
}

void Circuit::check_distinct(const std::vector<int>& qs) const {
  std::unordered_set<int> seen;
  for (int q : qs) {
    check_qubit(q);
    MBQ_REQUIRE(seen.insert(q).second, "repeated qubit " << q << " in gate");
  }
}

Circuit& Circuit::h(int q) { return append({GateKind::H, {q}}); }
Circuit& Circuit::x(int q) { return append({GateKind::X, {q}}); }
Circuit& Circuit::y(int q) { return append({GateKind::Y, {q}}); }
Circuit& Circuit::z(int q) { return append({GateKind::Z, {q}}); }
Circuit& Circuit::s(int q) { return append({GateKind::S, {q}}); }
Circuit& Circuit::sdg(int q) { return append({GateKind::Sdg, {q}}); }
Circuit& Circuit::t(int q) { return append({GateKind::T, {q}}); }
Circuit& Circuit::tdg(int q) { return append({GateKind::Tdg, {q}}); }

Circuit& Circuit::rx(int q, real theta) {
  return append({GateKind::Rx, {q}, theta});
}

Circuit& Circuit::rz(int q, real theta) {
  return append({GateKind::Rz, {q}, theta});
}

Circuit& Circuit::cz(int a, int b) { return append({GateKind::Cz, {a, b}}); }

Circuit& Circuit::cx(int control, int target) {
  return append({GateKind::Cx, {control, target}});
}

Circuit& Circuit::phase_gadget(std::vector<int> support, real theta) {
  MBQ_REQUIRE(!support.empty(), "phase gadget needs non-empty support");
  return append({GateKind::PhaseGadget, std::move(support), theta});
}

Circuit& Circuit::controlled_exp_x(int target, std::vector<int> controls,
                                   real beta, int ctrl_value) {
  MBQ_REQUIRE(ctrl_value == 0 || ctrl_value == 1, "ctrl_value must be 0/1");
  std::vector<int> qs{target};
  qs.insert(qs.end(), controls.begin(), controls.end());
  Gate g{GateKind::ControlledExpX, std::move(qs), beta};
  g.ctrl_value = ctrl_value;
  return append(g);
}

Circuit& Circuit::append(const Gate& g) {
  check_distinct(g.qubits);
  switch (g.kind) {
    case GateKind::Cz:
    case GateKind::Cx:
      MBQ_REQUIRE(g.qubits.size() == 2, "two-qubit gate needs 2 qubits");
      break;
    case GateKind::PhaseGadget:
      MBQ_REQUIRE(!g.qubits.empty(), "phase gadget needs support");
      break;
    case GateKind::ControlledExpX:
      MBQ_REQUIRE(!g.qubits.empty(), "controlled gate needs a target");
      break;
    default:
      MBQ_REQUIRE(g.qubits.size() == 1, "single-qubit gate needs 1 qubit");
  }
  gates_.push_back(g);
  return *this;
}

Circuit& Circuit::append(const Circuit& other) {
  MBQ_REQUIRE(other.n_ <= n_, "appended circuit is wider");
  for (const Gate& g : other.gates_) append(g);
  return *this;
}

void Circuit::apply_to(Statevector& sv) const {
  MBQ_REQUIRE(sv.num_qubits() == n_,
              "state width " << sv.num_qubits() << " != circuit width " << n_);
  for (const Gate& g : gates_) {
    switch (g.kind) {
      case GateKind::H: sv.apply_h(g.qubits[0]); break;
      case GateKind::X: sv.apply_x(g.qubits[0]); break;
      case GateKind::Y: sv.apply_1q(gates::y(), g.qubits[0]); break;
      case GateKind::Z: sv.apply_z(g.qubits[0]); break;
      case GateKind::S: sv.apply_rz(g.qubits[0], kPi / 2); break;
      case GateKind::Sdg: sv.apply_rz(g.qubits[0], -kPi / 2); break;
      case GateKind::T: sv.apply_rz(g.qubits[0], kPi / 4); break;
      case GateKind::Tdg: sv.apply_rz(g.qubits[0], -kPi / 4); break;
      case GateKind::Rx: sv.apply_rx(g.qubits[0], g.angle); break;
      case GateKind::Rz: sv.apply_rz(g.qubits[0], g.angle); break;
      case GateKind::Cz: sv.apply_cz(g.qubits[0], g.qubits[1]); break;
      case GateKind::Cx: sv.apply_cx(g.qubits[0], g.qubits[1]); break;
      case GateKind::PhaseGadget:
        sv.apply_exp_zs(g.angle, g.qubits);
        break;
      case GateKind::ControlledExpX:
        sv.apply_controlled_exp_x(
            g.angle, g.qubits[0],
            std::vector<int>(g.qubits.begin() + 1, g.qubits.end()),
            g.ctrl_value);
        break;
    }
  }
}

Matrix Circuit::unitary() const {
  MBQ_REQUIRE(n_ <= 12, "unitary() limited to 12 qubits, have " << n_);
  Matrix u = gates::identity_n(n_);
  for (const Gate& g : gates_) {
    Matrix step;
    switch (g.kind) {
      case GateKind::H: step = gates::embed1(gates::h(), g.qubits[0], n_); break;
      case GateKind::X: step = gates::embed1(gates::x(), g.qubits[0], n_); break;
      case GateKind::Y: step = gates::embed1(gates::y(), g.qubits[0], n_); break;
      case GateKind::Z: step = gates::embed1(gates::z(), g.qubits[0], n_); break;
      case GateKind::S: step = gates::embed1(gates::s(), g.qubits[0], n_); break;
      case GateKind::Sdg:
        step = gates::embed1(gates::sdg(), g.qubits[0], n_);
        break;
      case GateKind::T: step = gates::embed1(gates::t(), g.qubits[0], n_); break;
      case GateKind::Tdg:
        step = gates::embed1(gates::tdg(), g.qubits[0], n_);
        break;
      case GateKind::Rx:
        step = gates::embed1(gates::rx(g.angle), g.qubits[0], n_);
        break;
      case GateKind::Rz:
        step = gates::embed1(gates::rz(g.angle), g.qubits[0], n_);
        break;
      case GateKind::Cz:
        step = gates::embed2(gates::cz(), g.qubits[0], g.qubits[1], n_);
        break;
      case GateKind::Cx:
        step = gates::embed2(gates::cx(), g.qubits[0], g.qubits[1], n_);
        break;
      case GateKind::PhaseGadget:
        step = gates::exp_zs(g.angle, g.qubits, n_);
        break;
      case GateKind::ControlledExpX:
        step = gates::controlled_exp_x(
            g.angle, g.qubits[0],
            std::vector<int>(g.qubits.begin() + 1, g.qubits.end()),
            g.ctrl_value, n_);
        break;
    }
    u = step * u;
  }
  return u;
}

std::size_t Circuit::entangling_count_compiled() const {
  std::size_t count = 0;
  for (const Gate& g : gates_) {
    switch (g.kind) {
      case GateKind::Cz:
      case GateKind::Cx:
        count += 1;
        break;
      case GateKind::PhaseGadget:
        if (g.qubits.size() >= 2) count += 2 * (g.qubits.size() - 1);
        break;
      case GateKind::ControlledExpX: {
        // Counted via the phase-polynomial expansion.
        const std::size_t k = g.qubits.size() - 1;
        for (std::size_t t = 1; t <= k; ++t) {
          // Subsets of size t with the target appended: gadget width t+1.
          // C(k, t) subsets, each 2*t CX.
          std::size_t binom = 1;
          for (std::size_t i = 0; i < t; ++i)
            binom = binom * (k - i) / (i + 1);
          count += binom * 2 * t;
        }
        break;
      }
      default:
        break;
    }
  }
  return count;
}

Circuit Circuit::expand_controlled_gates() const {
  Circuit out(n_);
  for (const Gate& g : gates_) {
    if (g.kind != GateKind::ControlledExpX) {
      out.append(g);
      continue;
    }
    const int target = g.qubits[0];
    const std::vector<int> controls(g.qubits.begin() + 1, g.qubits.end());
    const std::size_t k = controls.size();
    MBQ_REQUIRE(k <= 20, "controlled gate with too many controls: " << k);
    // exp(i beta X_t | controls == v) =
    //   H_t * exp(i beta Z_t | controls == v) * H_t, and the controlled-Z
    // rotation expands over subsets T of the controls:
    //   exponent = beta * z_t * prod_c (1 + (-1)^v z_c)/2
    //            = beta/2^k * sum_T (-1)^{v|T|} Z_{T ∪ {t}}.
    // Each term exp(i a Z_S) is a PhaseGadget with theta = -2a.
    out.h(target);
    const real base = g.angle / static_cast<real>(1ULL << k);
    for (std::uint64_t mask = 0; mask < (1ULL << k); ++mask) {
      std::vector<int> support{target};
      for (std::size_t i = 0; i < k; ++i)
        if ((mask >> i) & 1ULL) support.push_back(controls[i]);
      real coeff = base;
      if (g.ctrl_value == 1 && (std::popcount(mask) & 1)) coeff = -coeff;
      out.phase_gadget(std::move(support), -2.0 * coeff);
    }
    out.h(target);
  }
  return out;
}

std::string Circuit::str() const {
  std::ostringstream oss;
  oss << "Circuit(n=" << n_ << ", gates=" << gates_.size() << ")\n";
  for (const Gate& g : gates_) oss << "  " << g.str() << "\n";
  return oss.str();
}

}  // namespace mbq
