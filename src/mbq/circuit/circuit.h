#pragma once
// Minimal quantum-circuit IR.
//
// This is the gate-model side of the story: QAOA circuits are built in
// this IR, executed on the statevector simulator, translated to ZX
// diagrams, and translated to measurement patterns (both generically via
// J-decomposition and by the paper's tailored compiler).

#include <string>
#include <vector>

#include "mbq/common/types.h"
#include "mbq/linalg/dense.h"
#include "mbq/sim/statevector.h"

namespace mbq {

enum class GateKind : std::uint8_t {
  H,
  X,
  Y,
  Z,
  S,
  Sdg,
  T,
  Tdg,
  Rx,  // H rz(theta) H
  Rz,  // diag(1, e^{i theta})
  Cz,
  Cx,           // qubits = {control, target}
  PhaseGadget,  // exp(-i angle/2 * Z_S), qubits = S (|S| >= 1)
  ControlledExpX,  // exp(i angle * X_t) iff all controls == ctrl_value;
                   // qubits = {target, controls...}
};

std::string gate_kind_name(GateKind k);

struct Gate {
  GateKind kind;
  std::vector<int> qubits;
  real angle = 0.0;
  int ctrl_value = 0;  // only for ControlledExpX

  /// True for parameterless Clifford/phase gates.
  bool is_parameterized() const noexcept;
  std::string str() const;
};

class Circuit {
 public:
  explicit Circuit(int num_qubits);

  int num_qubits() const noexcept { return n_; }
  const std::vector<Gate>& gates() const noexcept { return gates_; }
  std::size_t size() const noexcept { return gates_.size(); }

  Circuit& h(int q);
  Circuit& x(int q);
  Circuit& y(int q);
  Circuit& z(int q);
  Circuit& s(int q);
  Circuit& sdg(int q);
  Circuit& t(int q);
  Circuit& tdg(int q);
  Circuit& rx(int q, real theta);
  Circuit& rz(int q, real theta);
  Circuit& cz(int a, int b);
  Circuit& cx(int control, int target);
  /// exp(-i theta/2 Z_S).
  Circuit& phase_gadget(std::vector<int> support, real theta);
  /// exp(i beta X_target) controlled on all `controls` == ctrl_value.
  Circuit& controlled_exp_x(int target, std::vector<int> controls, real beta,
                            int ctrl_value);
  Circuit& append(const Gate& g);
  Circuit& append(const Circuit& other);

  /// Execute on a statevector (widths must match).
  void apply_to(Statevector& sv) const;

  /// Dense unitary; n <= 12 guard.
  Matrix unitary() const;

  /// Total gates / two-qubit-equivalent entangling count.  Phase gadgets
  /// on k qubits count as 2(k-1) CX in the standard compilation; this is
  /// what the paper's "at least 2p|E| entangling gates" counts for QAOA.
  std::size_t entangling_count_compiled() const;

  /// Replace ControlledExpX gates by their phase-polynomial expansion
  /// (H conjugation + 2^{|controls|} phase gadgets); other gates copied.
  Circuit expand_controlled_gates() const;

  std::string str() const;

 private:
  void check_qubit(int q) const;
  void check_distinct(const std::vector<int>& qs) const;

  int n_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace mbq
