#include "mbq/shard/task.h"

#include <algorithm>
#include <exception>
#include <memory>

#include "mbq/api/registry.h"
#include "mbq/api/workload_spec.h"
#include "mbq/common/error.h"

namespace mbq::shard {

namespace {

Response error_response(std::uint64_t index, const std::string& what) {
  Response r;
  r.ok = false;
  r.error_index = index;
  r.error_message = what;
  return r;
}

/// Mirrors Session::checked_prepared's support-check wording so a
/// sharded failure reads the same as the in-process one.
void require_supported(const api::Backend& backend, const api::Workload& w,
                       const qaoa::Angles& a) {
  const std::string reason = backend.unsupported_reason(w, a, nullptr);
  MBQ_REQUIRE(reason.empty(),
              "backend '" << backend.name() << "' cannot run this workload: "
                          << reason);
}

// --- warm prepare cache ------------------------------------------------
// A small process-global LRU over prepare() artifacts, keyed by (backend
// registry name, spec fingerprint, exact angle values).  For the
// per-Session WorkerPool it saves recompiles when the variational loop
// revisits angles across rounds (the parent's own cache cannot help — it
// lives in a different process); for the long-lived serving daemon's
// fleet it IS the warm cache: a repeated (workload, angles) pair from
// any client skips compilation entirely.  Safe because prepare artifacts
// are immutable and backends are stateless — reusing one is exactly what
// Session's own LRU does; hits skip the support check for the same
// reason Session's do (entries are only inserted after it passed).

struct PrepCacheEntry {
  std::string backend;
  std::uint64_t fingerprint = 0;
  std::vector<real> angles;
  std::shared_ptr<const api::Prepared> prepared;
  std::uint64_t last_used = 0;
};

constexpr std::size_t kPrepCacheCapacity = 32;
std::vector<PrepCacheEntry> g_prep_cache;  // worker processes are
std::uint64_t g_prep_clock = 0;            // single-threaded (see
                                           // tools/mbq_worker.cpp)

std::shared_ptr<const api::Prepared> cached_prepare(
    const api::Backend& backend, const std::string& backend_name,
    std::uint64_t fingerprint, const api::Workload& w, const qaoa::Angles& a) {
  const std::vector<real> key = a.flat();
  for (PrepCacheEntry& e : g_prep_cache) {
    if (e.fingerprint == fingerprint && e.backend == backend_name &&
        e.angles == key) {
      e.last_used = ++g_prep_clock;
      return e.prepared;
    }
  }
  require_supported(backend, w, a);
  auto prepared = backend.prepare(w, a);
  if (prepared == nullptr) return nullptr;  // nothing cacheable
  if (g_prep_cache.size() >= kPrepCacheCapacity) {
    g_prep_cache.erase(std::min_element(
        g_prep_cache.begin(), g_prep_cache.end(),
        [](const auto& x, const auto& y) { return x.last_used < y.last_used; }));
  }
  g_prep_cache.push_back(
      {backend_name, fingerprint, key, prepared, ++g_prep_clock});
  return prepared;
}

Response run_sample(const api::Backend& backend, const Request& req) {
  Response out;
  out.outcomes.reserve(static_cast<std::size_t>(req.end - req.begin));
  const Rng root(req.seed);
  MBQ_REQUIRE(req.shots >= 1, "sample request needs shots >= 1");
  MBQ_REQUIRE(req.end <= req.points.size() * req.shots,
              "sample slice end " << req.end << " exceeds "
                                  << req.points.size() << " points x "
                                  << req.shots << " shots");
  const std::uint64_t fingerprint = api::spec_fingerprint(req.workload.spec());
  // Pairs are processed in ascending flat order; the prepare artifact is
  // reused across the (contiguous) shots of each point.
  std::shared_ptr<const api::Prepared> prep;
  std::uint64_t prep_point = ~std::uint64_t{0};
  for (std::uint64_t t = req.begin; t < req.end; ++t) {
    const std::uint64_t i = t / req.shots;
    const std::uint64_t s = t % req.shots;
    const qaoa::Angles& a = req.points[i];
    if (i != prep_point) {
      // Check/prepare failures report error_in_eval = false: the serial
      // loop raises them from checked_prepared before burning any stream
      // index, and a remote parent restores its call counter accordingly.
      try {
        prep = cached_prepare(backend, req.backend, fingerprint, req.workload,
                              a);
        prep_point = i;
      } catch (const std::exception& e) {
        return error_response(t, e.what());
      }
    }
    try {
      // Exactly Session::sample/sample_batch's stream assignment: shot s
      // of sample call (base_call + i) draws stream(base_call + i) then
      // stream(s) below it.
      Rng shot_rng = root.stream(req.base_call + i).stream(s);
      out.outcomes.push_back(
          backend.sample_one(req.workload, a, shot_rng, prep.get()));
    } catch (const std::exception& e) {
      Response r = error_response(t, e.what());
      r.error_in_eval = true;
      return r;
    }
  }
  return out;
}

Response run_expectation(const api::Backend& backend, const Request& req) {
  Response out;
  const std::size_t count = static_cast<std::size_t>(req.end - req.begin);
  out.values.reserve(count);
  const Rng root(req.seed);
  MBQ_REQUIRE(req.end <= req.points.size(),
              "expectation slice end " << req.end << " exceeds "
                                       << req.points.size() << " points");
  const std::uint64_t fingerprint = api::spec_fingerprint(req.workload.spec());
  // Phase 1 — support checks and prepares for the whole slice BEFORE any
  // stream is drawn, mirroring Session::checked_prepared_batch.  A
  // failure here reports error_in_eval = false: the serial loop throws
  // at this stage without burning any stream index, and the parent
  // restores its call counter accordingly.
  std::vector<std::shared_ptr<const api::Prepared>> preps(count);
  for (std::uint64_t i = req.begin; i < req.end; ++i) {
    try {
      preps[i - req.begin] = cached_prepare(backend, req.backend, fingerprint,
                                            req.workload, req.points[i]);
    } catch (const std::exception& e) {
      return error_response(i, e.what());
    }
  }
  // Phase 2 — evaluation; failures here have consumed streams, like a
  // serial eval throwing after the batch advanced its counter.
  for (std::uint64_t i = req.begin; i < req.end; ++i) {
    try {
      // Session's assignment: the (stream_base + i)-th expectation
      // stream (stream_base already carries kExpectationStreamBase).
      Rng eval_rng = root.stream(req.stream_base + i);
      out.values.push_back(backend.expectation(
          req.workload, req.points[i], eval_rng, preps[i - req.begin].get()));
    } catch (const std::exception& e) {
      Response r = error_response(i, e.what());
      r.error_in_eval = true;
      return r;
    }
  }
  return out;
}

}  // namespace

Response execute_request(const Request& req) {
  try {
    const std::shared_ptr<api::Backend> backend =
        api::BackendRegistry::instance().create(req.backend);
    switch (req.kind) {
      case TaskKind::kSample:
        return run_sample(*backend, req);
      case TaskKind::kExpectation:
        return run_expectation(*backend, req);
    }
    return error_response(req.begin, "unknown task kind");
  } catch (const std::exception& e) {
    return error_response(req.begin, e.what());
  }
}

}  // namespace mbq::shard
