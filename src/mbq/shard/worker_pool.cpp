#include "mbq/shard/worker_pool.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "mbq/common/error.h"
#include "mbq/shard/protocol.h"

namespace mbq::shard {

namespace {

std::string self_exe_dir() {
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) return {};
  return self.parent_path().string();
}

bool is_executable(const std::string& path) {
  return !path.empty() && ::access(path.c_str(), X_OK) == 0;
}

}  // namespace

SpawnedWorker spawn_worker(const std::string& worker_path) {
  MBQ_REQUIRE(is_executable(worker_path),
              "shard worker executable not found or not executable: '"
                  << worker_path << "'");
  int sv[2];
  MBQ_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
              "socketpair failed: " << std::strerror(errno));
  // Parent end must not leak into this child (it gets sv[1]) or any
  // later sibling.
  ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    MBQ_REQUIRE(false, "fork failed: " << std::strerror(errno));
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.  Move
    // the channel to a fixed descriptor and exec the worker.
    ::dup2(sv[1], 3);  // dup2 clears CLOEXEC on the new descriptor
    if (sv[1] != 3) ::close(sv[1]);
    const char* argv[] = {worker_path.c_str(), "3", nullptr};
    ::execv(worker_path.c_str(), const_cast<char**>(argv));
    _exit(127);  // exec failed; parent sees EOF and reports
  }
  ::close(sv[1]);
  return {pid, sv[0]};
}

int worker_timeout_ms() {
  if (const char* env = std::getenv("MBQ_WORKER_TIMEOUT_MS"))
    if (const int ms = std::atoi(env); ms >= 1) return ms;
  return 0;
}

std::string resolve_worker_path(const std::string& override_path) {
  if (!override_path.empty()) {
    if (is_executable(override_path)) return override_path;
    return {};
  }
  if (const char* env = std::getenv("MBQ_WORKER"); env != nullptr && *env) {
    if (is_executable(env)) return env;
    return {};
  }
  const std::string dir = self_exe_dir();
  if (!dir.empty()) {
    const std::string beside = dir + "/mbq_worker";
    if (is_executable(beside)) return beside;
    // Benches and examples land one level below the binary dir root
    // (build/bench, build/examples) where mbq_worker lives.
    const std::string parent = dir + "/../mbq_worker";
    if (is_executable(parent)) return parent;
  }
  return {};
}

WorkerPool::WorkerPool(int num_workers, const std::string& worker_path) {
  MBQ_REQUIRE(num_workers >= 1,
              "worker pool needs at least one worker, got " << num_workers);
  pids_.reserve(static_cast<std::size_t>(num_workers));
  fds_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    SpawnedWorker w;
    try {
      w = spawn_worker(worker_path);
    } catch (const Error&) {
      shutdown();
      throw;
    }
    pids_.push_back(w.pid);
    fds_.push_back(w.fd);
  }
  alive_ = true;
}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::shutdown() noexcept {
  alive_ = false;
  // Closing the parent ends EOFs every worker's request loop; they exit
  // on their own.  Reap to avoid zombies — a worker stuck mid-task is
  // killed rather than waited on forever.
  for (const int fd : fds_)
    if (fd >= 0) ::close(fd);
  fds_.clear();
  for (const pid_t pid : pids_) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
    }
  }
  pids_.clear();
}

std::vector<std::vector<std::byte>> WorkerPool::round(
    std::span<const std::vector<std::byte>> requests) {
  MBQ_REQUIRE(alive_, "worker pool is not alive (a previous round failed)");
  MBQ_REQUIRE(requests.size() <= pids_.size(),
              "round of " << requests.size() << " requests exceeds the pool's "
                          << pids_.size() << " workers");
  // Dispatch everything first so workers run concurrently, then collect.
  // Distinct sockets per worker make this deadlock-free: a worker blocked
  // writing a large response never blocks the parent's remaining request
  // writes.
  try {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].empty()) continue;
      try {
        write_frame(fds_[i], requests[i]);
      } catch (const Error& e) {
        MBQ_REQUIRE(false, "shard worker " << i << " (pid " << pids_[i]
                                           << ") is unreachable — it was "
                                              "killed or crashed: "
                                           << e.what());
      }
    }

    // MBQ_WORKER_TIMEOUT_MS (re-read every round so tests and callers
    // can toggle it) turns a hung-but-alive worker into an Error naming
    // the worker, instead of blocking the parent forever.
    const int timeout_ms = worker_timeout_ms();
    std::vector<std::vector<std::byte>> responses(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].empty()) continue;
      std::optional<std::vector<std::byte>> frame;
      try {
        frame = read_frame(fds_[i], timeout_ms);
      } catch (const Error& e) {
        MBQ_REQUIRE(false, "shard worker " << i << " (pid " << pids_[i]
                                           << ") failed to answer its slice: "
                                           << e.what());
      }
      MBQ_REQUIRE(frame.has_value(),
                  "shard worker " << i << " (pid " << pids_[i]
                                  << ") exited before answering — it was "
                                     "killed or crashed mid-task");
      responses[i] = std::move(*frame);
    }
    return responses;
  } catch (...) {
    // Any channel failure poisons the whole pool: surviving workers may
    // hold half-read frames, so tear everything down.
    shutdown();
    throw;
  }
}

}  // namespace mbq::shard
