#pragma once
// The parent <-> mbq_worker wire protocol.
//
// Transport: one AF_UNIX stream socket per worker carrying
// length-prefixed frames (u32 little-endian payload size, then the
// payload).  The parent writes one request frame per round, the worker
// answers with exactly one response frame, and a clean EOF on the
// request side tells the worker to exit — there is no other control
// flow.
//
// A request carries everything a fresh process needs to replay a slice
// of the serial loop bit-identically: the workload as its declarative
// WorkloadSpec (api/workload_spec.h — ansatz, cost, graph/weights or
// declarative circuit, compile options, noise knob), the backend
// REGISTRY NAME (the child instantiates its own adapter via
// BackendRegistry — backends are stateless, so same name => same math),
// the session seed, the angle points, and the [begin, end) slice of the
// global stream-index space this worker owns (see plan.h).  Every
// built-in ansatz lowers to a spec and shards; only the CustomCircuit
// escape hatch (an arbitrary std::function) is reported unshardable,
// making the Session fall back in-process.
//
// A response is either Ok + payload (sampled outcomes as u64 bitstrings,
// or expectation values as bit-exact f64s) or Error + the failing global
// index + the exception message, which the parent rethrows as mbq::Error.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mbq/api/workload.h"
#include "mbq/common/serialize.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::shard {

// --- shardability ------------------------------------------------------

/// Empty when the workload can be reconstructed in a worker process;
/// otherwise the human-readable reason it cannot.
std::string unshardable_reason(const api::Workload& w);
inline bool shardable(const api::Workload& w) {
  return unshardable_reason(w).empty();
}

// --- workload codec ----------------------------------------------------
// Thin wrappers over the WorkloadSpec codec (api/workload_spec.h): the
// shard layer owns the framing, the api layer owns the workload format.

void encode_workload(ByteWriter& out, const api::Workload& w);
/// Throws Error on malformed input (never trusts the frame).
api::Workload decode_workload(ByteReader& in);

void encode_angles(ByteWriter& out, const qaoa::Angles& a);
qaoa::Angles decode_angles(ByteReader& in);

// --- requests ----------------------------------------------------------

enum class TaskKind : std::uint8_t {
  /// Sample the flattened (point, shot) slice [begin, end) of
  /// points.size() * shots pairs; pair t = (point t / shots, shot
  /// t % shots) draws Rng(seed).stream(base_call + point).stream(shot) —
  /// exactly Session::sample/sample_batch's assignment.  Response
  /// payload: (end - begin) u64 outcomes in t order.
  kSample = 1,
  /// Evaluate expectation for points [begin, end); point i draws
  /// Rng(seed).stream(stream_base + i) where stream_base already
  /// includes Session's kExpectationStreamBase offset.  Response
  /// payload: (end - begin) f64 values in point order.
  kExpectation = 2,
};

struct Request {
  TaskKind kind = TaskKind::kSample;
  std::string backend;  // registry name, resolved in the child
  std::uint64_t seed = 0;
  api::Workload workload = api::Workload::qaoa(qaoa::CostHamiltonian(1));
  std::vector<qaoa::Angles> points;
  std::uint64_t shots = 0;        // per point; kSample only
  std::uint64_t base_call = 0;    // kSample: first point's sample-call index
  std::uint64_t stream_base = 0;  // kExpectation: absolute stream of point 0
  std::uint64_t begin = 0;        // global slice, inclusive
  std::uint64_t end = 0;          // exclusive
};

std::vector<std::byte> encode_request(const Request& r);
Request decode_request(std::span<const std::byte> frame);

/// A sub-slice [begin, end) of `whole`'s global index space, rebased so a
/// worker that sees only the sub-request still draws exactly the global
/// streams: for kSample the flattened (point, shot) space is cut to the
/// touched points with base_call advanced past the untouched prefix; for
/// kExpectation the point list is cut with stream_base absorbing the
/// offset.  `offset` maps the sub-request's slice-local indices (error
/// reports, response positions) back to `whole`'s index space.  Both the
/// Session's sharded paths and the serving daemon's streaming dispatch
/// split calls with this one helper, so their slices are
/// indistinguishable to a worker.  Requires begin < end within whole's
/// [begin, end).
struct SliceRequest {
  Request request;
  std::uint64_t offset = 0;
};
SliceRequest rebase_slice(const Request& whole, std::uint64_t begin,
                          std::uint64_t end);

// --- responses ---------------------------------------------------------

struct Response {
  bool ok = true;
  std::vector<std::uint64_t> outcomes;  // kSample payload
  std::vector<real> values;             // kExpectation payload
  /// On error: the lowest slice index whose processing threw, plus the
  /// exception message (workers process their slice in ascending order
  /// and stop at the first failure, mirroring the serial loop).
  std::uint64_t error_index = 0;
  std::string error_message;
  /// True when the failure happened while EVALUATING (streams already
  /// drawn); false for support-check/prepare failures, which the serial
  /// loop raises before burning any stream index — the parent uses this
  /// to decide whether a failed expectation batch consumed its indices.
  bool error_in_eval = false;
};

std::vector<std::byte> encode_response(const Response& r);
Response decode_response(std::span<const std::byte> frame);

// --- framing -----------------------------------------------------------

/// Write one length-prefixed frame; throws Error on a closed peer (the
/// socket is written with SIGPIPE suppressed) or short write.
void write_frame(int fd, std::span<const std::byte> payload);

/// Read one frame; nullopt on clean EOF before any byte, Error on a
/// truncated frame (peer died mid-message) or oversized length prefix.
/// With timeout_ms > 0, a peer that sends nothing for that long (e.g. a
/// SIGSTOP'd or wedged worker — its socket stays open, so a plain read
/// would block forever) raises a descriptive Error instead of hanging;
/// 0 waits indefinitely.
std::optional<std::vector<std::byte>> read_frame(int fd, int timeout_ms = 0);

}  // namespace mbq::shard
