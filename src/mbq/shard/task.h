#pragma once
// Request execution — the compute core of the mbq_worker process.
//
// Kept in the library (rather than the worker's main()) so tests can run
// the exact code a worker runs without spawning processes, and so the
// parent could in principle execute a slice inline.  The function is
// pure with respect to process state: it builds its own backend from the
// registry name and derives every Rng stream from the request's seed, so
// its results are bit-identical wherever it runs.

#include "mbq/shard/protocol.h"

namespace mbq::shard {

/// Execute one request and produce its response.  Never throws: failures
/// are folded into an error Response carrying the lowest failing global
/// index and the exception message (the slice is processed in ascending
/// index order and stops at the first failure, like the serial loop).
Response execute_request(const Request& req);

}  // namespace mbq::shard
