#include "mbq/shard/plan.h"

#include "mbq/common/error.h"

namespace mbq::shard {

ShardPlan::ShardPlan(std::uint64_t total, int num_workers) : total_(total) {
  MBQ_REQUIRE(num_workers >= 1,
              "a shard plan needs at least one worker, got " << num_workers);
  ranges_.reserve(static_cast<std::size_t>(num_workers));
  const std::uint64_t w = static_cast<std::uint64_t>(num_workers);
  const std::uint64_t base = total / w;
  const std::uint64_t extra = total % w;  // first `extra` workers get +1
  std::uint64_t begin = 0;
  for (std::uint64_t i = 0; i < w; ++i) {
    const std::uint64_t size = base + (i < extra ? 1 : 0);
    ranges_.push_back({begin, begin + size});
    begin += size;
  }
}

int ShardPlan::active_workers() const noexcept {
  int n = 0;
  for (const ShardRange& r : ranges_)
    if (!r.empty()) ++n;
  return n;
}

}  // namespace mbq::shard
