#pragma once
// ShardPlan: how a block of independent work items splits across worker
// processes.
//
// Every sharded entry point — sample() shots, sample_batch() (point,
// shot) pairs, expectation_batch() angle points — is a loop over a
// contiguous global index space in which item i's randomness is a pure
// function of (seed, i) via Rng::stream (see api/session.h for the exact
// stream assignment).  A ShardPlan therefore only has to hand each
// worker a contiguous [begin, end) slice of that space: the worker
// replays exactly the streams the serial loop would, and the parent
// concatenates the slices back in index order.  Merged results are
// bit-identical to the in-process path by construction, whatever the
// worker count.

#include <cstdint>
#include <vector>

namespace mbq::shard {

struct ShardRange {
  std::uint64_t begin = 0;  // inclusive global index
  std::uint64_t end = 0;    // exclusive
  std::uint64_t size() const noexcept { return end - begin; }
  bool empty() const noexcept { return begin == end; }
  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

class ShardPlan {
 public:
  /// Split [0, total) into `num_workers` contiguous ranges in index
  /// order.  Sizes differ by at most one (the first total % num_workers
  /// workers get the extra item); with total < num_workers the trailing
  /// ranges are empty.  Requires num_workers >= 1.
  ShardPlan(std::uint64_t total, int num_workers);

  std::uint64_t total() const noexcept { return total_; }
  int num_workers() const noexcept {
    return static_cast<int>(ranges_.size());
  }
  const std::vector<ShardRange>& ranges() const noexcept { return ranges_; }
  /// Workers with non-empty ranges (they are always a prefix).
  int active_workers() const noexcept;

 private:
  std::uint64_t total_ = 0;
  std::vector<ShardRange> ranges_;
};

}  // namespace mbq::shard
