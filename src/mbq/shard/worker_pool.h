#pragma once
// A pool of mbq_worker processes speaking the shard protocol.
//
// Each worker is fork/exec'd once and reused across rounds: it loops on
// (read request frame, execute, write response frame) until the parent
// closes its socket, so per-call overhead after spawn is one small
// request frame plus the result payload.  One AF_UNIX stream socket per
// worker carries both directions; the parent end is CLOEXEC so workers
// never inherit their siblings' channels.
//
// Failure model: a worker that dies (crash, kill, exec failure) is
// detected as EPIPE on write or EOF/short-read on read and surfaces as a
// descriptive mbq::Error from round() — never a hang, because every read
// is from a socket whose peer's death closes it.  A worker that is alive
// but WEDGED (SIGSTOP'd, spinning in a kernel call) keeps its socket
// open, so death detection cannot see it; set MBQ_WORKER_TIMEOUT_MS to
// bound every response read and turn that into a descriptive Error
// naming the worker too (default: wait forever).  After a failed round
// the pool is broken (alive() == false) and must be discarded; the
// Session above falls back to in-process execution.

#include <sys/types.h>

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mbq::shard {

/// Locate the worker executable: an explicit non-empty `override` wins,
/// then $MBQ_WORKER, then `mbq_worker` next to the running executable
/// (where the CMake target puts it, beside the test binaries), then one
/// directory up (benches and examples run from build subdirectories).
/// Returns "" when none of these exists — the caller should fall back to
/// in-process execution.
std::string resolve_worker_path(const std::string& override_path = {});

/// One fork/exec'd mbq_worker and the parent end of its channel.  The
/// parent fd is CLOEXEC (later siblings never inherit it); closing it
/// EOFs the worker's request loop, which is the normal shutdown path.
/// Shared by WorkerPool and the serving daemon's fleet (which respawns
/// through this after a worker death).  Throws Error when the executable
/// cannot be spawned.
struct SpawnedWorker {
  pid_t pid = -1;
  int fd = -1;
};
SpawnedWorker spawn_worker(const std::string& worker_path);

/// The per-read worker timeout in effect: MBQ_WORKER_TIMEOUT_MS, or 0
/// (wait forever) when unset/invalid.  A positive value turns a hung
/// worker — e.g. SIGSTOP'd, or spinning in a kernel call — from an
/// indefinite block into a descriptive Error naming the worker.
int worker_timeout_ms();

class WorkerPool {
 public:
  /// Spawns `num_workers` processes running `worker_path`.  Throws Error
  /// when the executable cannot be spawned.
  WorkerPool(int num_workers, const std::string& worker_path);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const noexcept { return static_cast<int>(pids_.size()); }
  bool alive() const noexcept { return alive_; }
  /// Worker process ids, for diagnostics and fault-injection tests.
  const std::vector<pid_t>& pids() const noexcept { return pids_; }

  /// One round: send requests[i] to worker i (requests.size() <= size();
  /// an empty request skips its worker), then collect one response frame
  /// per dispatched request, in worker order.  Workers execute
  /// concurrently.  Throws Error if any worker died or broke protocol;
  /// the pool is then permanently broken.
  std::vector<std::vector<std::byte>> round(
      std::span<const std::vector<std::byte>> requests);

 private:
  void shutdown() noexcept;

  std::vector<pid_t> pids_;
  std::vector<int> fds_;  // parent end of each worker's socket
  bool alive_ = false;
};

}  // namespace mbq::shard
