#include "mbq/shard/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "mbq/api/ansatz_registry.h"
#include "mbq/common/error.h"

namespace mbq::shard {

namespace {

/// Hard cap on a single frame; a length prefix beyond this is corruption
/// (the largest legitimate frame is a shot-outcome payload, ~8 bytes per
/// shot).
constexpr std::uint32_t kMaxFrameBytes = 1u << 28;  // 256 MiB

constexpr std::uint8_t kStatusOk = 0;
constexpr std::uint8_t kStatusError = 1;

}  // namespace

std::string unshardable_reason(const api::Workload& w) {
  if (w.has_custom_builder())
    return "custom-circuit workloads hold an arbitrary CircuitBuilder "
           "closure that cannot cross a process boundary";
  if (w.ansatz() == api::AnsatzKind::Registered &&
      !api::AnsatzKindRegistry::instance().is_builtin(
          w.spec().registered_name))
    return "ansatz kind '" + w.spec().registered_name +
           "' is registered in this process only; a freshly exec'd worker "
           "could not resolve it (library-registered kinds shard, runtime "
           "registrations execute in-process)";
  return {};
}

void encode_workload(ByteWriter& out, const api::Workload& w) {
  MBQ_REQUIRE(shardable(w), "cannot serialize workload: "
                                << unshardable_reason(w));
  // The workload IS its spec (the CustomCircuit escape hatch is guarded
  // above), so the spec codec carries every ansatz kind — arbitrary-order
  // costs, weighted MIS, declarative circuits, the noise knob — and a
  // worker rebuilds the workload bit-exactly from it.
  api::encode_spec(out, w.spec());
}

api::Workload decode_workload(ByteReader& in) {
  return api::Workload::from_spec(api::decode_spec(in));
}

void encode_angles(ByteWriter& out, const qaoa::Angles& a) {
  out.f64_vec(a.gamma);
  out.f64_vec(a.beta);
}

qaoa::Angles decode_angles(ByteReader& in) {
  std::vector<real> gamma = in.f64_vec();
  std::vector<real> beta = in.f64_vec();
  return qaoa::Angles(std::move(gamma), std::move(beta));
}

std::vector<std::byte> encode_request(const Request& r) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(r.kind));
  out.str(r.backend);
  out.u64(r.seed);
  encode_workload(out, r.workload);
  out.u32(static_cast<std::uint32_t>(r.points.size()));
  for (const qaoa::Angles& a : r.points) encode_angles(out, a);
  out.u64(r.shots);
  out.u64(r.base_call);
  out.u64(r.stream_base);
  out.u64(r.begin);
  out.u64(r.end);
  return out.take();
}

Request decode_request(std::span<const std::byte> frame) {
  ByteReader in(frame);
  Request r;
  const std::uint8_t kind = in.u8();
  MBQ_REQUIRE(kind == static_cast<std::uint8_t>(TaskKind::kSample) ||
                  kind == static_cast<std::uint8_t>(TaskKind::kExpectation),
              "malformed request frame: task kind " << int{kind});
  r.kind = static_cast<TaskKind>(kind);
  r.backend = in.str();
  r.seed = in.u64();
  r.workload = decode_workload(in);
  const std::uint32_t points = in.u32();
  r.points.reserve(points);
  for (std::uint32_t i = 0; i < points; ++i)
    r.points.push_back(decode_angles(in));
  r.shots = in.u64();
  r.base_call = in.u64();
  r.stream_base = in.u64();
  r.begin = in.u64();
  r.end = in.u64();
  MBQ_REQUIRE(in.done(), "malformed request frame: " << in.remaining()
                                                     << " trailing bytes");
  MBQ_REQUIRE(r.begin <= r.end, "malformed request frame: begin "
                                    << r.begin << " > end " << r.end);
  return r;
}

SliceRequest rebase_slice(const Request& whole, std::uint64_t begin,
                          std::uint64_t end) {
  MBQ_REQUIRE(begin < end, "empty slice [" << begin << ", " << end << ")");
  MBQ_REQUIRE(whole.begin <= begin && end <= whole.end,
              "slice [" << begin << ", " << end << ") outside the request's ["
                        << whole.begin << ", " << whole.end << ")");
  SliceRequest out;
  out.request = whole;
  if (whole.kind == TaskKind::kSample) {
    MBQ_REQUIRE(whole.shots >= 1, "sample request needs shots >= 1");
    const std::uint64_t first_point = begin / whole.shots;
    const std::uint64_t last_point = (end - 1) / whole.shots;
    out.request.points.assign(
        whole.points.begin() + static_cast<std::ptrdiff_t>(first_point),
        whole.points.begin() + static_cast<std::ptrdiff_t>(last_point) + 1);
    out.request.base_call = whole.base_call + first_point;
    out.request.begin = begin - first_point * whole.shots;
    out.request.end = end - first_point * whole.shots;
    out.offset = first_point * whole.shots;
  } else {
    out.request.points.assign(
        whole.points.begin() + static_cast<std::ptrdiff_t>(begin),
        whole.points.begin() + static_cast<std::ptrdiff_t>(end));
    out.request.stream_base = whole.stream_base + begin;
    out.request.begin = 0;
    out.request.end = end - begin;
    out.offset = begin;
  }
  return out;
}

std::vector<std::byte> encode_response(const Response& r) {
  ByteWriter out;
  if (r.ok) {
    out.u8(kStatusOk);
    out.u64_vec(r.outcomes);
    out.f64_vec(r.values);
  } else {
    out.u8(kStatusError);
    out.u64(r.error_index);
    out.u8(r.error_in_eval ? 1 : 0);
    out.str(r.error_message);
  }
  return out.take();
}

Response decode_response(std::span<const std::byte> frame) {
  ByteReader in(frame);
  Response r;
  const std::uint8_t status = in.u8();
  if (status == kStatusOk) {
    r.ok = true;
    r.outcomes = in.u64_vec();
    r.values = in.f64_vec();
  } else {
    MBQ_REQUIRE(status == kStatusError,
                "malformed response frame: status " << int{status});
    r.ok = false;
    r.error_index = in.u64();
    r.error_in_eval = in.u8() != 0;
    r.error_message = in.str();
  }
  MBQ_REQUIRE(in.done(), "malformed response frame: " << in.remaining()
                                                      << " trailing bytes");
  return r;
}

void write_frame(int fd, std::span<const std::byte> payload) {
  MBQ_REQUIRE(payload.size() <= kMaxFrameBytes,
              "frame of " << payload.size() << " bytes exceeds the "
                          << kMaxFrameBytes << "-byte protocol cap");
  std::byte header[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    header[i] = static_cast<std::byte>((len >> (8 * i)) & 0xFF);

  const auto send_all = [fd](const std::byte* data, std::size_t size) {
    std::size_t sent = 0;
    while (sent < size) {
      // MSG_NOSIGNAL: a dead peer surfaces as EPIPE here instead of
      // delivering SIGPIPE to the whole process.
      const ssize_t n =
          ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        MBQ_REQUIRE(false, "shard channel write failed: "
                               << std::strerror(errno));
      }
      sent += static_cast<std::size_t>(n);
    }
  };
  send_all(header, sizeof(header));
  send_all(payload.data(), payload.size());
}

std::optional<std::vector<std::byte>> read_frame(int fd, int timeout_ms) {
  // One deadline covers the whole frame: a peer that keeps trickling
  // bytes forever is as wedged as one that sends nothing.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const auto recv_all = [fd, timeout_ms, deadline](std::byte* data,
                                                   std::size_t size,
                                                   bool eof_ok) -> bool {
    std::size_t got = 0;
    while (got < size) {
      if (timeout_ms > 0) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        struct pollfd pfd{fd, POLLIN, 0};
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(std::max<long long>(
                                left.count(), 0)));
        if (ready < 0) {
          if (errno == EINTR) continue;
          MBQ_REQUIRE(false, "shard channel poll failed: "
                                 << std::strerror(errno));
        }
        MBQ_REQUIRE(ready > 0, "shard channel read timed out after "
                                   << timeout_ms
                                   << " ms (peer alive but not responding)");
      }
      const ssize_t n = ::read(fd, data + got, size - got);
      if (n < 0) {
        if (errno == EINTR) continue;
        MBQ_REQUIRE(false, "shard channel read failed: "
                               << std::strerror(errno));
      }
      if (n == 0) {
        MBQ_REQUIRE(eof_ok && got == 0,
                    "shard channel closed mid-frame (worker process died?)");
        return false;
      }
      got += static_cast<std::size_t>(n);
    }
    return true;
  };

  std::byte header[4];
  if (!recv_all(header, sizeof(header), /*eof_ok=*/true)) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  MBQ_REQUIRE(len <= kMaxFrameBytes, "frame length prefix "
                                         << len << " exceeds the "
                                         << kMaxFrameBytes << "-byte cap");
  std::vector<std::byte> payload(len);
  if (len > 0) recv_all(payload.data(), len, /*eof_ok=*/false);
  return payload;
}

}  // namespace mbq::shard
