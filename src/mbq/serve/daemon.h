#pragma once
// The mbqd serving core: a persistent, multi-tenant daemon that accepts
// spec-carrying shard requests from many concurrent Sessions and
// schedules their shot slices across a long-lived worker fleet.
//
// Architecture (one background thread, one poll() event loop):
//
//   clients ──unix/tcp──▶ event loop ──socketpair──▶ mbq_worker fleet
//                           │  per-client FIFOs, round-robin dispatch
//                           │  warm-cache bookkeeping + affinity
//                           └─ stats, deadlines, respawn
//
//   * Scheduling: each connection owns a FIFO of pending slices; free
//     workers are fed round-robin across connections, so one chatty
//     client cannot starve the others.  A connection that already has
//     max_pending_requests unanswered requests gets a typed BUSY frame
//     for the next one — backpressure is an answer, never a hang.
//   * Streaming: every finished slice is forwarded to its client
//     immediately; the client merges by global index (frames.h
//     SliceMerger), so the merged result is bit-identical to the local
//     path regardless of worker count, scheduling order, or which
//     worker ran which slice.
//   * Fault tolerance: a worker that dies (crash, SIGKILL) is detected
//     as EOF on its channel; any complete response already in the pipe
//     is used, an unfinished slice is re-queued at the front, and the
//     seat is respawned.  Effects on the merged result are at-most-once
//     by construction: a slice's payload is a pure function of (seed,
//     indices), and the client's merger rejects duplicate coverage.  A
//     worker that is alive but wedged is killed after worker_timeout_ms
//     (when enabled) and handled the same way.
//   * Warm cache: workers keep a prepare-artifact LRU keyed by
//     (backend, spec_fingerprint, angles) — see shard/task.cpp — and
//     the scheduler routes slices of a fingerprint it has seen to the
//     worker that last ran it when one is free.  Repeated (workload,
//     angles) pairs, from any client, skip compilation; the daemon
//     reports hits in DONE frames and aggregate stats.
//
// Determinism contract: the daemon never invents randomness and never
// rewrites spec bytes; it only cuts [begin, end) into sub-slices with
// shard::rebase_slice — the same helper the in-process sharded Session
// uses — so a request's merged answer is bit-equal to running it
// locally at any worker count, through any schedule, across any number
// of worker deaths.  (Error REPORTING is the one scheduling-dependent
// surface: when several slices fail, the client sees whichever error
// arrived first, not necessarily the lowest index — the error class and
// stream-counter semantics are preserved.)

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mbq/serve/endpoint.h"
#include "mbq/serve/frames.h"

namespace mbq::serve {

struct DaemonOptions {
  /// Endpoint strings to listen on ("unix:/path", "tcp:host:port");
  /// at least one.  tcp port 0 binds an ephemeral port — read it back
  /// from Daemon::endpoints().
  std::vector<std::string> endpoints;
  /// Worker fleet size; 0 reads MBQ_NUM_PROCESSES, falling back to 2.
  int workers = 0;
  /// Explicit mbq_worker path; empty uses shard::resolve_worker_path.
  std::string worker_path;
  /// Reported in HELLO_OK and stats dumps.
  std::string name = "mbqd";
  /// Unanswered requests one connection may hold before SUBMITs bounce
  /// with BUSY.
  int max_pending_requests = 8;
  /// Slices a request is cut into (coarse cap; small requests get fewer).
  /// 0 = 4x the worker count — enough granularity for streaming, re-
  /// dispatch, and fair interleaving without drowning in tiny frames.
  int max_slices_per_request = 0;
  /// Kill-and-redispatch deadline for a single slice, in ms; 0 disables,
  /// -1 (default) reads MBQ_WORKER_TIMEOUT_MS.
  int worker_timeout_ms = -1;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();  // stops if running

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind every endpoint, spawn the fleet, and launch the event loop
  /// thread.  Throws Error (nothing half-started) on bad endpoints, a
  /// missing worker executable, or spawn failure.
  void start();
  /// Graceful shutdown: stop accepting, drop connections, reap the
  /// fleet, remove unix socket files.  Idempotent.
  void stop();
  bool running() const noexcept;

  /// The endpoints actually bound (ephemeral tcp ports resolved).
  const std::vector<Endpoint>& endpoints() const;
  /// Convenience: the first bound tcp/unix endpoint string, for clients.
  std::string endpoint_string() const;

  int workers() const noexcept;
  /// Live fleet pids — for fault-injection tests and diagnostics.
  std::vector<std::int64_t> worker_pids() const;
  /// Consistent snapshot of the counters a STATS frame reports.
  DaemonStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mbq::serve
