#include "mbq/serve/frames.h"

#include <sstream>

#include "mbq/common/error.h"

namespace mbq::serve {

namespace {

/// Same cap as the blocking framing in shard/protocol.cpp.
constexpr std::uint32_t kMaxFrameBytes = 1u << 28;  // 256 MiB

ByteReader open_frame(std::span<const std::byte> frame, FrameKind want) {
  ByteReader in(frame);
  const std::uint8_t kind = in.u8();
  MBQ_REQUIRE(kind == static_cast<std::uint8_t>(want),
              "malformed serve frame: kind " << int{kind} << ", wanted "
                                             << int{static_cast<std::uint8_t>(
                                                    want)});
  return in;
}

void close_frame(const ByteReader& in, const char* what) {
  MBQ_REQUIRE(in.done(), "malformed " << what << " frame: " << in.remaining()
                                      << " trailing bytes");
}

}  // namespace

FrameKind frame_kind(std::span<const std::byte> frame) {
  MBQ_REQUIRE(!frame.empty(), "empty serve frame");
  const auto kind = static_cast<std::uint8_t>(frame[0]);
  const bool known =
      (kind >= static_cast<std::uint8_t>(FrameKind::kHello) &&
       kind <= static_cast<std::uint8_t>(FrameKind::kStatsRequest)) ||
      (kind >= static_cast<std::uint8_t>(FrameKind::kHelloOk) &&
       kind <= static_cast<std::uint8_t>(FrameKind::kStatsReply));
  MBQ_REQUIRE(known, "malformed serve frame: unknown kind " << int{kind});
  return static_cast<FrameKind>(kind);
}

// --- handshake ---------------------------------------------------------

std::vector<std::byte> encode_hello(const Hello& h) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(FrameKind::kHello));
  out.u32(h.version);
  out.str(h.client_name);
  return out.take();
}

Hello decode_hello(std::span<const std::byte> frame) {
  ByteReader in = open_frame(frame, FrameKind::kHello);
  Hello h;
  h.version = in.u32();
  h.client_name = in.str();
  close_frame(in, "hello");
  return h;
}

std::vector<std::byte> encode_hello_ok(const HelloOk& h) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(FrameKind::kHelloOk));
  out.u32(h.version);
  out.str(h.daemon_name);
  out.u32(h.workers);
  return out.take();
}

HelloOk decode_hello_ok(std::span<const std::byte> frame) {
  ByteReader in = open_frame(frame, FrameKind::kHelloOk);
  HelloOk h;
  h.version = in.u32();
  h.daemon_name = in.str();
  h.workers = in.u32();
  close_frame(in, "hello-ok");
  return h;
}

// --- requests ----------------------------------------------------------

std::vector<std::byte> encode_submit(const Submit& s) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(FrameKind::kSubmit));
  out.u64(s.request_id);
  // The shard request codec travels verbatim: the daemon re-encodes only
  // the per-slice rebasing, never the spec bytes themselves.
  const std::vector<std::byte> body = shard::encode_request(s.request);
  for (const std::byte b : body) out.u8(static_cast<std::uint8_t>(b));
  return out.take();
}

Submit decode_submit(std::span<const std::byte> frame) {
  ByteReader in = open_frame(frame, FrameKind::kSubmit);
  Submit s;
  s.request_id = in.u64();
  // The rest of the frame IS one shard request (decode_request consumes
  // it exactly, trailing bytes included in its own check).
  constexpr std::size_t kHeader = 1 + 8;  // kind tag + request id
  MBQ_REQUIRE(frame.size() >= kHeader, "malformed submit frame");
  s.request = shard::decode_request(frame.subspan(kHeader));
  return s;
}

std::vector<std::byte> encode_stats_request() {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(FrameKind::kStatsRequest));
  return out.take();
}

// --- streamed results --------------------------------------------------

std::vector<std::byte> encode_slice(const Slice& s) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(FrameKind::kSlice));
  out.u64(s.request_id);
  out.u64(s.begin);
  out.u64(s.end);
  out.u64_vec(s.outcomes);
  out.f64_vec(s.values);
  return out.take();
}

Slice decode_slice(std::span<const std::byte> frame) {
  ByteReader in = open_frame(frame, FrameKind::kSlice);
  Slice s;
  s.request_id = in.u64();
  s.begin = in.u64();
  s.end = in.u64();
  s.outcomes = in.u64_vec();
  s.values = in.f64_vec();
  close_frame(in, "slice");
  MBQ_REQUIRE(s.begin <= s.end, "malformed slice frame: begin " << s.begin
                                                                << " > end "
                                                                << s.end);
  return s;
}

std::vector<std::byte> encode_done(const Done& d) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(FrameKind::kDone));
  out.u64(d.request_id);
  out.u32(d.slices);
  out.u32(d.redispatched);
  out.u8(d.warm_hit ? 1 : 0);
  return out.take();
}

Done decode_done(std::span<const std::byte> frame) {
  ByteReader in = open_frame(frame, FrameKind::kDone);
  Done d;
  d.request_id = in.u64();
  d.slices = in.u32();
  d.redispatched = in.u32();
  d.warm_hit = in.u8() != 0;
  close_frame(in, "done");
  return d;
}

std::vector<std::byte> encode_error(const ErrorFrame& e) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(FrameKind::kError));
  out.u64(e.request_id);
  out.u64(e.error_index);
  out.u8(e.error_in_eval ? 1 : 0);
  out.str(e.message);
  return out.take();
}

ErrorFrame decode_error(std::span<const std::byte> frame) {
  ByteReader in = open_frame(frame, FrameKind::kError);
  ErrorFrame e;
  e.request_id = in.u64();
  e.error_index = in.u64();
  e.error_in_eval = in.u8() != 0;
  e.message = in.str();
  close_frame(in, "error");
  return e;
}

std::vector<std::byte> encode_busy(const Busy& b) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(FrameKind::kBusy));
  out.u64(b.request_id);
  out.str(b.message);
  return out.take();
}

Busy decode_busy(std::span<const std::byte> frame) {
  ByteReader in = open_frame(frame, FrameKind::kBusy);
  Busy b;
  b.request_id = in.u64();
  b.message = in.str();
  close_frame(in, "busy");
  return b;
}

// --- observability -----------------------------------------------------

std::vector<std::byte> encode_stats_reply(const DaemonStats& s) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(FrameKind::kStatsReply));
  out.u64(s.connections_total);
  out.u64(s.connections_active);
  out.u64(s.requests_total);
  out.u64(s.requests_active);
  out.u64(s.busy_rejections);
  out.u64(s.slices_dispatched);
  out.u64(s.slices_redispatched);
  out.u64(s.slices_completed);
  out.u64(s.worker_respawns);
  out.u64(s.warm_hits);
  out.u64(s.warm_misses);
  out.u64(s.queue_depth);
  out.u32(static_cast<std::uint32_t>(s.workers.size()));
  for (const WorkerStats& w : s.workers) {
    out.u64(static_cast<std::uint64_t>(w.pid));
    out.u8(w.busy ? 1 : 0);
    out.u64(w.slices_done);
    out.u64(w.respawns);
  }
  return out.take();
}

DaemonStats decode_stats_reply(std::span<const std::byte> frame) {
  ByteReader in = open_frame(frame, FrameKind::kStatsReply);
  DaemonStats s;
  s.connections_total = in.u64();
  s.connections_active = in.u64();
  s.requests_total = in.u64();
  s.requests_active = in.u64();
  s.busy_rejections = in.u64();
  s.slices_dispatched = in.u64();
  s.slices_redispatched = in.u64();
  s.slices_completed = in.u64();
  s.worker_respawns = in.u64();
  s.warm_hits = in.u64();
  s.warm_misses = in.u64();
  s.queue_depth = in.u64();
  const std::uint32_t workers = in.u32();
  s.workers.reserve(workers);
  for (std::uint32_t i = 0; i < workers; ++i) {
    WorkerStats w;
    w.pid = static_cast<std::int64_t>(in.u64());
    w.busy = in.u8() != 0;
    w.slices_done = in.u64();
    w.respawns = in.u64();
    s.workers.push_back(w);
  }
  close_frame(in, "stats");
  return s;
}

std::string format_stats(const DaemonStats& s) {
  std::ostringstream os;
  os << "connections:    " << s.connections_active << " active / "
     << s.connections_total << " total\n"
     << "requests:       " << s.requests_active << " active / "
     << s.requests_total << " total, " << s.busy_rejections
     << " busy-rejected\n"
     << "slices:         " << s.slices_completed << " completed / "
     << s.slices_dispatched << " dispatched, " << s.slices_redispatched
     << " re-dispatched, " << s.queue_depth << " queued\n"
     << "warm cache:     " << s.warm_hits << " hits / "
     << (s.warm_hits + s.warm_misses) << " lookups\n"
     << "worker respawns:" << " " << s.worker_respawns << "\n";
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const WorkerStats& w = s.workers[i];
    os << "worker " << i << ":       pid " << w.pid << ", "
       << (w.busy ? "busy" : "idle") << ", " << w.slices_done << " slices, "
       << w.respawns << " respawns\n";
  }
  return os.str();
}

// --- incremental framing -----------------------------------------------

void FrameBuffer::append(std::span<const std::byte> bytes) {
  // Compact before growing: consumed frames would otherwise pin the
  // buffer's front forever on a long-lived connection.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (1u << 16)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<std::byte>> FrameBuffer::pop() {
  if (buffered() < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
  MBQ_REQUIRE(len <= kMaxFrameBytes, "frame length prefix "
                                         << len << " exceeds the "
                                         << kMaxFrameBytes << "-byte cap");
  if (buffered() < 4 + std::size_t{len}) return std::nullopt;
  std::vector<std::byte> frame(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4),
                               buf_.begin() +
                                   static_cast<std::ptrdiff_t>(pos_ + 4 + len));
  pos_ += 4 + len;
  return frame;
}

// --- client-side merge -------------------------------------------------

SliceMerger::SliceMerger(shard::TaskKind kind, std::uint64_t begin,
                         std::uint64_t end)
    : kind_(kind), begin_(begin), end_(end) {
  MBQ_REQUIRE(begin <= end, "merger range [" << begin << ", " << end
                                             << ") is inverted");
  const std::size_t total = static_cast<std::size_t>(end - begin);
  seen_.assign(total, false);
  if (kind == shard::TaskKind::kSample)
    outcomes_.resize(total);
  else
    values_.resize(total);
}

void SliceMerger::add(const Slice& s) {
  MBQ_REQUIRE(begin_ <= s.begin && s.end <= end_,
              "slice [" << s.begin << ", " << s.end
                        << ") outside the request's [" << begin_ << ", "
                        << end_ << ")");
  const std::uint64_t size = s.end - s.begin;
  if (kind_ == shard::TaskKind::kSample) {
    MBQ_REQUIRE(s.outcomes.size() == size && s.values.empty(),
                "sample slice [" << s.begin << ", " << s.end << ") carries "
                                 << s.outcomes.size() << " outcomes");
  } else {
    MBQ_REQUIRE(s.values.size() == size && s.outcomes.empty(),
                "expectation slice [" << s.begin << ", " << s.end
                                      << ") carries " << s.values.size()
                                      << " values");
  }
  for (std::uint64_t i = 0; i < size; ++i) {
    const std::size_t at = static_cast<std::size_t>(s.begin - begin_ + i);
    MBQ_REQUIRE(!seen_[at], "duplicate result for index "
                                << (s.begin + i)
                                << " — a slice was delivered twice");
    seen_[at] = true;
    if (kind_ == shard::TaskKind::kSample)
      outcomes_[at] = s.outcomes[i];
    else
      values_[at] = s.values[i];
  }
  covered_ += size;
}

}  // namespace mbq::serve
