#pragma once
// Serving endpoints: where mbqd listens and clients connect.
//
// An endpoint is a string with one of two shapes:
//
//   unix:/path/to/mbqd.sock      AF_UNIX stream socket at that path
//   tcp:host:port                AF_INET stream socket (host is a
//                                numeric IPv4 address or "localhost";
//                                port 0 asks the kernel for an ephemeral
//                                port — read it back from listen())
//
// The daemon listens on any number of endpoints at once (a local UNIX
// socket for same-host clients plus TCP for remote Sessions is the
// expected deployment); a client connects to exactly one.  Both carry
// the identical frame protocol — the transport is invisible above this
// header.

#include <cstdint>
#include <string>

namespace mbq::serve {

struct Endpoint {
  enum class Kind : std::uint8_t { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // kUnix: filesystem path
  std::string host;  // kTcp
  std::uint16_t port = 0;

  std::string to_string() const;
};

/// Parse "unix:..." / "tcp:host:port"; throws Error with the offending
/// string on any other shape (empty path, non-numeric or out-of-range
/// port, missing colon...).
Endpoint parse_endpoint(const std::string& spec);

/// Bind + listen.  For kUnix a stale socket file at the path is removed
/// first (daemons restart; a leftover inode must not block the bind).
/// For kTcp with port 0 the kernel picks the port.  Returns the listening
/// fd (CLOEXEC, non-blocking) and writes the final endpoint — with the
/// resolved port — to `bound`.  Throws Error naming the endpoint on
/// failure.
int listen_endpoint(const Endpoint& ep, Endpoint& bound);

/// Connect a blocking stream socket to the endpoint; throws Error naming
/// the endpoint on failure (daemon not running, wrong path, refused).
int connect_endpoint(const Endpoint& ep);

}  // namespace mbq::serve
