#pragma once
// DaemonClient: the client side of the mbqd protocol.
//
// One client owns one connection: connect + HELLO handshake in the
// constructor, then run() submits a whole shard::Request and blocks
// while SLICE frames stream back in whatever order workers finish,
// merging them by global index (frames.h SliceMerger) — so the returned
// vectors are bit-identical to executing the request locally.  The
// transport is synchronous by design: the Session calls run() exactly
// where it would have run the sharded rounds, and concurrency across
// clients lives in the daemon, not here.
//
// Failures are typed: a BUSY frame (backpressure) raises BusyError so
// callers can retry or shed load; an ERROR frame raises RemoteError
// carrying the failing global index and the error_in_eval phase flag,
// which Session's remote transport uses to restore its stream counters
// exactly like the local paths do.

#include <cstdint>
#include <string>
#include <vector>

#include "mbq/common/error.h"
#include "mbq/serve/endpoint.h"
#include "mbq/serve/frames.h"
#include "mbq/shard/protocol.h"

namespace mbq::serve {

/// The daemon refused a SUBMIT because this connection already holds its
/// limit of unanswered requests.  Nothing was executed; retrying after
/// draining an outstanding request is safe.
class BusyError : public Error {
 public:
  explicit BusyError(const std::string& what) : Error(what) {}
};

/// The daemon answered a request with an ERROR frame: a worker reported
/// a failure at `index` (global index space of the request), or the
/// request itself was rejected.
class RemoteError : public Error {
 public:
  RemoteError(const std::string& what, std::uint64_t index, bool in_eval)
      : Error(what), index_(index), in_eval_(in_eval) {}
  /// Failing global index (kNoRequest-level errors report 0).
  std::uint64_t index() const noexcept { return index_; }
  /// Mirrors shard::Response::error_in_eval — whether stream indices
  /// were consumed before the failure.
  bool in_eval() const noexcept { return in_eval_; }

 private:
  std::uint64_t index_ = 0;
  bool in_eval_ = false;
};

class DaemonClient {
 public:
  /// Connect to "unix:..." / "tcp:host:port" and perform the HELLO
  /// handshake.  Throws Error on connection failure or a protocol
  /// version mismatch (the daemon says which versions disagreed).
  explicit DaemonClient(const std::string& endpoint,
                        std::string client_name = "mbq-client");
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  struct RunResult {
    std::vector<std::uint64_t> outcomes;  // kSample
    std::vector<real> values;             // kExpectation
    std::uint32_t slices = 0;
    std::uint32_t redispatched = 0;
    bool warm_hit = false;
  };

  /// Execute one whole request on the daemon and merge the streamed
  /// slices.  Throws BusyError on backpressure, RemoteError on a
  /// reported failure, Error on a broken connection.
  RunResult run(const shard::Request& request);

  /// The daemon's aggregate counters (mbqd --stats uses this too).
  DaemonStats stats();

  const HelloOk& hello() const noexcept { return hello_; }

 private:
  std::vector<std::byte> next_frame();

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  HelloOk hello_;
};

}  // namespace mbq::serve
