#pragma once
// The client <-> mbqd wire protocol.
//
// Transport: the same length-prefixed framing as the parent <-> worker
// channel (shard/protocol.h write_frame/read_frame) over a UNIX or TCP
// stream socket (serve/endpoint.h).  Every payload starts with a one-
// byte frame kind; the body of a SUBMIT embeds the unmodified shard
// request codec, so the daemon extends the shard protocol rather than
// forking it — a worker never sees a serve frame, and the spec bytes a
// client sends are the spec bytes a worker receives.
//
// Conversation:
//
//   client                        daemon
//   HELLO(version, name)  ----->
//                         <-----  HELLO_OK(version, daemon, workers)
//   SUBMIT(id, request)   ----->
//                         <-----  SLICE(id, [b0,e0), payload)   } any
//                         <-----  SLICE(id, [b1,e1), payload)   } order
//                         <-----  DONE(id, slices, redispatched,
//                                      warm_hit)
//   SUBMIT(id', ...)      ----->
//                         <-----  BUSY(id', reason)      (backpressure)
//   STATS()               ----->
//                         <-----  STATS_OK(counters, per-worker rows)
//
// Slices stream back AS WORKERS FINISH, in whatever order that is; the
// client merges them by their [begin, end) position in the request's
// global index space (SliceMerger), which is exactly why the merged
// answer is bit-identical to the local path — the determinism contract
// already makes slice payloads pure functions of (seed, index), so
// arrival order carries no information.  A request that cannot run
// (malformed frame, queue full, worker-reported failure) gets exactly
// one BUSY or ERROR frame instead of DONE; the daemon never goes silent
// on an accepted request.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mbq/shard/protocol.h"

namespace mbq::serve {

/// Bumped on any wire-visible change; HELLO carries it both ways and a
/// mismatch is answered with ERROR (kNoRequest) + close, so an old
/// client fails with a message instead of garbage.
constexpr std::uint32_t kProtocolVersion = 1;

/// Request id used by frames that answer no particular request (HELLO
/// errors, malformed-frame errors).
constexpr std::uint64_t kNoRequest = ~std::uint64_t{0};

enum class FrameKind : std::uint8_t {
  // client -> daemon
  kHello = 1,
  kSubmit = 2,
  kStatsRequest = 3,
  // daemon -> client
  kHelloOk = 16,
  kSlice = 17,
  kDone = 18,
  kError = 19,
  kBusy = 20,
  kStatsReply = 21,
};

/// Kind tag of an encoded frame (first payload byte); throws on empty.
FrameKind frame_kind(std::span<const std::byte> frame);

// --- handshake ---------------------------------------------------------

struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::string client_name;
};

struct HelloOk {
  std::uint32_t version = kProtocolVersion;
  std::string daemon_name;
  std::uint32_t workers = 0;
};

// --- requests ----------------------------------------------------------

/// A whole call: the embedded shard::Request's [begin, end) covers the
/// full index space (all shots, all points); the daemon cuts it into
/// slices internally.  `request_id` is client-chosen and only has to be
/// unique among the connection's unanswered requests.
struct Submit {
  std::uint64_t request_id = 0;
  shard::Request request;
};

// --- streamed results --------------------------------------------------

struct Slice {
  std::uint64_t request_id = 0;
  std::uint64_t begin = 0;  // global index space of the Submit
  std::uint64_t end = 0;
  std::vector<std::uint64_t> outcomes;  // kSample payload
  std::vector<real> values;             // kExpectation payload
};

struct Done {
  std::uint64_t request_id = 0;
  std::uint32_t slices = 0;        // slices the request was cut into
  std::uint32_t redispatched = 0;  // slices re-run after a worker death
  /// True when the daemon had already seen this (spec fingerprint,
  /// angles) pair — the fleet's warm prepare cache served it without
  /// recompiling.
  bool warm_hit = false;
};

struct ErrorFrame {
  std::uint64_t request_id = kNoRequest;
  std::uint64_t error_index = 0;
  bool error_in_eval = false;  // see shard::Response
  std::string message;
};

struct Busy {
  std::uint64_t request_id = 0;
  std::string message;
};

// --- observability -----------------------------------------------------

struct WorkerStats {
  std::int64_t pid = -1;
  bool busy = false;
  std::uint64_t slices_done = 0;
  std::uint64_t respawns = 0;  // times THIS seat was respawned
};

struct DaemonStats {
  std::uint64_t connections_total = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t requests_active = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t slices_dispatched = 0;
  std::uint64_t slices_redispatched = 0;
  std::uint64_t slices_completed = 0;
  std::uint64_t worker_respawns = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_misses = 0;
  std::uint64_t queue_depth = 0;  // slices queued, not yet dispatched
  std::vector<WorkerStats> workers;
};

/// Human-readable multi-line rendering (mbqd --stats, CI artifacts).
std::string format_stats(const DaemonStats& s);

// --- frame codecs ------------------------------------------------------
// encode_* produce a full frame payload (kind tag first); decode_*
// require the matching tag and validate like the shard codecs — a
// malformed frame throws Error, never reads garbage.

std::vector<std::byte> encode_hello(const Hello& h);
Hello decode_hello(std::span<const std::byte> frame);

std::vector<std::byte> encode_hello_ok(const HelloOk& h);
HelloOk decode_hello_ok(std::span<const std::byte> frame);

std::vector<std::byte> encode_submit(const Submit& s);
Submit decode_submit(std::span<const std::byte> frame);

std::vector<std::byte> encode_stats_request();

std::vector<std::byte> encode_slice(const Slice& s);
Slice decode_slice(std::span<const std::byte> frame);

std::vector<std::byte> encode_done(const Done& d);
Done decode_done(std::span<const std::byte> frame);

std::vector<std::byte> encode_error(const ErrorFrame& e);
ErrorFrame decode_error(std::span<const std::byte> frame);

std::vector<std::byte> encode_busy(const Busy& b);
Busy decode_busy(std::span<const std::byte> frame);

std::vector<std::byte> encode_stats_reply(const DaemonStats& s);
DaemonStats decode_stats_reply(std::span<const std::byte> frame);

// --- incremental framing -----------------------------------------------

/// Reassembles length-prefixed frames from a non-blocking byte stream:
/// feed whatever recv() returned, pop complete frames as they form.  The
/// daemon's event loop cannot use the blocking read_frame — a slow or
/// adversarial peer would stall every other connection — so each fd gets
/// one of these.  Enforces the same frame-size cap as the blocking path.
class FrameBuffer {
 public:
  void append(std::span<const std::byte> bytes);
  /// Next complete frame's payload, or nullopt until more bytes arrive.
  /// Throws Error on an oversized length prefix (protocol corruption).
  std::optional<std::vector<std::byte>> pop();

  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
};

// --- client-side merge -------------------------------------------------

/// Accumulates SLICE frames into the flat result of the whole request,
/// placing each payload at its global [begin, end) — so the merged
/// vectors are independent of arrival order by construction.  Rejects
/// overlapping or out-of-range slices (the daemon's at-most-once
/// re-dispatch guarantee made observable: a duplicate slice is a bug,
/// not something to paper over by overwriting).
class SliceMerger {
 public:
  SliceMerger(shard::TaskKind kind, std::uint64_t begin, std::uint64_t end);

  void add(const Slice& s);
  bool complete() const noexcept { return covered_ == end_ - begin_; }
  std::uint64_t missing() const noexcept { return end_ - begin_ - covered_; }

  /// The merged payloads; only meaningful once complete().
  std::vector<std::uint64_t>& outcomes() noexcept { return outcomes_; }
  std::vector<real>& values() noexcept { return values_; }

 private:
  shard::TaskKind kind_;
  std::uint64_t begin_ = 0;
  std::uint64_t end_ = 0;
  std::uint64_t covered_ = 0;
  std::vector<bool> seen_;  // per-index at-most-once guard
  std::vector<std::uint64_t> outcomes_;
  std::vector<real> values_;
};

}  // namespace mbq::serve
