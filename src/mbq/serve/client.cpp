#include "mbq/serve/client.h"

#include <unistd.h>

#include <utility>

namespace mbq::serve {

DaemonClient::DaemonClient(const std::string& endpoint,
                           std::string client_name) {
  fd_ = connect_endpoint(parse_endpoint(endpoint));
  try {
    Hello h;
    h.client_name = std::move(client_name);
    shard::write_frame(fd_, encode_hello(h));
    const std::vector<std::byte> reply = next_frame();
    const FrameKind kind = frame_kind(reply);
    if (kind == FrameKind::kError) {
      const ErrorFrame e = decode_error(reply);
      throw RemoteError("daemon at " + endpoint + " rejected handshake: " +
                            e.message,
                        e.error_index, e.error_in_eval);
    }
    hello_ = decode_hello_ok(reply);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

DaemonClient::~DaemonClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<std::byte> DaemonClient::next_frame() {
  auto frame = shard::read_frame(fd_);
  MBQ_REQUIRE(frame.has_value(),
              "daemon closed the connection mid-conversation");
  return std::move(*frame);
}

DaemonClient::RunResult DaemonClient::run(const shard::Request& request) {
  Submit s;
  s.request_id = next_request_id_++;
  s.request = request;
  shard::write_frame(fd_, encode_submit(s));

  SliceMerger merger(request.kind, request.begin, request.end);
  for (;;) {
    const std::vector<std::byte> frame = next_frame();
    switch (frame_kind(frame)) {
      case FrameKind::kSlice: {
        Slice slice = decode_slice(frame);
        MBQ_REQUIRE(slice.request_id == s.request_id,
                    "daemon streamed a slice for request "
                        << slice.request_id << ", expected "
                        << s.request_id);
        merger.add(slice);
        break;
      }
      case FrameKind::kDone: {
        const Done d = decode_done(frame);
        MBQ_REQUIRE(d.request_id == s.request_id,
                    "daemon answered request " << d.request_id
                                               << ", expected "
                                               << s.request_id);
        MBQ_REQUIRE(merger.complete(),
                    "daemon sent DONE with " << merger.missing()
                                             << " indices still missing");
        RunResult r;
        r.outcomes = std::move(merger.outcomes());
        r.values = std::move(merger.values());
        r.slices = d.slices;
        r.redispatched = d.redispatched;
        r.warm_hit = d.warm_hit;
        return r;
      }
      case FrameKind::kBusy: {
        const Busy b = decode_busy(frame);
        throw BusyError("daemon is busy: " + b.message);
      }
      case FrameKind::kError: {
        const ErrorFrame e = decode_error(frame);
        throw RemoteError(e.message, e.error_index, e.error_in_eval);
      }
      default:
        MBQ_REQUIRE(false, "unexpected daemon frame while waiting for "
                           "request "
                               << s.request_id);
    }
  }
}

DaemonStats DaemonClient::stats() {
  shard::write_frame(fd_, encode_stats_request());
  const std::vector<std::byte> frame = next_frame();
  if (frame_kind(frame) == FrameKind::kError) {
    const ErrorFrame e = decode_error(frame);
    throw RemoteError(e.message, e.error_index, e.error_in_eval);
  }
  return decode_stats_reply(frame);
}

}  // namespace mbq::serve
