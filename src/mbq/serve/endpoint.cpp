#include "mbq/serve/endpoint.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "mbq/common/error.h"

namespace mbq::serve {

namespace {

/// "localhost" and numeric IPv4 only: the daemon serves sockets, it does
/// not do name resolution (getaddrinfo can block indefinitely, and the
/// deployment story is explicit addresses).
in_addr_t resolve_host(const std::string& host) {
  if (host == "localhost") return htonl(INADDR_LOOPBACK);
  if (host.empty() || host == "*" || host == "0.0.0.0") return INADDR_ANY;
  in_addr addr{};
  MBQ_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr) == 1,
              "endpoint host '" << host
                                << "' is not a numeric IPv4 address, "
                                   "'localhost', or '*'");
  return addr.s_addr;
}

void set_cloexec_nonblock(int fd) {
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  MBQ_REQUIRE(path.size() < sizeof(addr.sun_path),
              "unix endpoint path too long (" << path.size() << " bytes): "
                                              << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    MBQ_REQUIRE(!ep.path.empty(), "unix endpoint needs a path: '" << spec
                                                                  << "'");
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    MBQ_REQUIRE(colon != std::string::npos && colon + 1 < rest.size(),
                "tcp endpoint needs host:port: '" << spec << "'");
    ep.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    MBQ_REQUIRE(end != nullptr && *end == '\0' && port >= 0 && port <= 65535,
                "tcp endpoint port out of range: '" << spec << "'");
    ep.port = static_cast<std::uint16_t>(port);
    resolve_host(ep.host);  // reject unresolvable hosts at parse time
    return ep;
  }
  MBQ_REQUIRE(false, "endpoint must start with 'unix:' or 'tcp:', got '"
                         << spec << "'");
}

int listen_endpoint(const Endpoint& ep, Endpoint& bound) {
  bound = ep;
  const int fd = ::socket(
      ep.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  MBQ_REQUIRE(fd >= 0, "socket failed for " << ep.to_string() << ": "
                                            << std::strerror(errno));
  try {
    if (ep.kind == Endpoint::Kind::kUnix) {
      ::unlink(ep.path.c_str());  // stale socket from a previous daemon
      const sockaddr_un addr = unix_addr(ep.path);
      MBQ_REQUIRE(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "bind " << ep.to_string() << " failed: "
                          << std::strerror(errno));
    } else {
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = resolve_host(ep.host);
      addr.sin_port = htons(ep.port);
      MBQ_REQUIRE(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "bind " << ep.to_string() << " failed: "
                          << std::strerror(errno));
      socklen_t len = sizeof(addr);
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
      bound.port = ntohs(addr.sin_port);  // resolve an ephemeral port 0
    }
    MBQ_REQUIRE(::listen(fd, 64) == 0, "listen " << ep.to_string()
                                                 << " failed: "
                                                 << std::strerror(errno));
    set_cloexec_nonblock(fd);
    return fd;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

int connect_endpoint(const Endpoint& ep) {
  const int fd = ::socket(
      ep.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  MBQ_REQUIRE(fd >= 0, "socket failed for " << ep.to_string() << ": "
                                            << std::strerror(errno));
  try {
    int rc;
    if (ep.kind == Endpoint::Kind::kUnix) {
      const sockaddr_un addr = unix_addr(ep.path);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } else {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = resolve_host(ep.host);
      addr.sin_port = htons(ep.port);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    MBQ_REQUIRE(rc == 0, "connect " << ep.to_string()
                                    << " failed (is mbqd running?): "
                                    << std::strerror(errno));
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    return fd;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

}  // namespace mbq::serve
