#include "mbq/serve/daemon.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "mbq/api/workload_spec.h"
#include "mbq/common/error.h"
#include "mbq/common/serialize.h"
#include "mbq/shard/plan.h"
#include "mbq/shard/worker_pool.h"

namespace mbq::serve {

namespace {

using Clock = std::chrono::steady_clock;

int resolve_workers(int requested) {
  if (requested >= 1) return requested;
  if (const char* env = std::getenv("MBQ_NUM_PROCESSES"))
    if (const int n = std::atoi(env); n >= 1) return n;
  return 2;
}

/// Warm-cache identity of one (backend, workload, angles) evaluation —
/// the same tuple the worker-side prepare LRU is keyed by, so a daemon
/// "seen before" is exactly a fleet "no recompile needed" (modulo LRU
/// eviction and which worker the affinity router lands on).
std::uint64_t warm_key(std::uint64_t spec_fp, const std::string& backend,
                       const qaoa::Angles& point) {
  ByteWriter w;
  w.str(backend);
  w.f64_vec(point.flat());
  return api::fnv1a64(w.data(), spec_fp);
}

/// One queued slice of one client request.
struct Job {
  std::uint64_t conn_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t begin = 0;  // global index space of the whole request
  std::uint64_t end = 0;
  std::uint64_t fingerprint = 0;
  std::shared_ptr<const shard::Request> whole;
};

struct ReqState {
  std::shared_ptr<const shard::Request> whole;
  std::uint64_t fingerprint = 0;
  std::uint32_t total_slices = 0;
  std::uint32_t delivered = 0;
  std::uint32_t redispatched = 0;
  std::uint32_t outstanding = 0;  // queued + in flight
  bool warm_hit = false;
  /// Answered with ERROR; kept only until in-flight slices drain so
  /// their late results can be discarded instead of dangling.
  bool failed = false;
};

struct Conn {
  std::uint64_t id = 0;
  int fd = -1;
  bool helloed = false;
  /// Fatal protocol error answered: flush the out buffer, then drop.
  bool closing = false;
  /// Marked by any handler, swept (fd closed, maps erased) once per
  /// event-loop pass — handlers never invalidate each other's refs.
  bool dead = false;
  FrameBuffer in;
  std::vector<std::byte> out;
  std::size_t out_pos = 0;
  std::deque<Job> queue;
  std::unordered_map<std::uint64_t, ReqState> requests;
  std::string name;
};

struct Seat {
  pid_t pid = -1;
  int fd = -1;  // -1: respawn failed, seat out of service
  FrameBuffer in;
  bool busy = false;
  Job job{};
  std::uint64_t job_offset = 0;
  /// Deadline fired and SIGKILL was sent; the EOF that follows does the
  /// actual re-dispatch.  Guards against killing the replacement.
  bool killed = false;
  Clock::time_point deadline{};
  bool affinity_valid = false;
  std::uint64_t affinity = 0;  // fingerprint of the last dispatched slice
};

void set_nonblock_cloexec(int fd) {
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

}  // namespace

struct Daemon::Impl {
  DaemonOptions opts;
  int workers = 0;
  int max_slices = 0;
  int timeout_ms = 0;
  std::string worker_path;

  std::vector<Endpoint> bound;
  std::vector<int> listen_fds;

  int wake_r = -1;
  int wake_w = -1;
  std::thread loop;
  std::atomic<bool> running{false};
  std::atomic<bool> stop_flag{false};

  // Everything below is owned by the event-loop thread; `stats` is the
  // one surface other threads read, guarded by `stats_mu`.
  std::map<int, Conn> conns;                // fd -> connection
  std::map<std::uint64_t, int> conn_fd;     // id -> fd (ordered: RR scan)
  std::uint64_t next_conn_id = 1;
  std::uint64_t rr_last = 0;  // conn id granted the previous dispatch
  std::vector<Seat> seats;
  std::unordered_set<std::uint64_t> warm_seen;

  mutable std::mutex stats_mu;
  DaemonStats stats;

  // --- stats helpers ----------------------------------------------------

  template <typename F>
  void stat(F&& f) {
    std::lock_guard<std::mutex> lk(stats_mu);
    f(stats);
  }

  DaemonStats snapshot() const {
    std::lock_guard<std::mutex> lk(stats_mu);
    return stats;
  }

  // --- outbound client bytes --------------------------------------------

  void queue_out(Conn& c, std::span<const std::byte> payload) {
    if (c.dead) return;
    const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
      c.out.push_back(static_cast<std::byte>((size >> (8 * i)) & 0xFF));
    c.out.insert(c.out.end(), payload.begin(), payload.end());
    flush(c);
  }

  /// Push buffered bytes; EAGAIN leaves the rest for POLLOUT, a hard
  /// error (or a drained buffer on a closing conn) marks the conn dead.
  void flush(Conn& c) {
    if (c.dead) return;
    while (c.out_pos < c.out.size()) {
      const ssize_t n =
          ::send(c.fd, c.out.data() + c.out_pos, c.out.size() - c.out_pos,
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        c.out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      drop_conn(c);
      return;
    }
    c.out.clear();
    c.out_pos = 0;
    if (c.closing) drop_conn(c);
  }

  /// Mark dead and release scheduler bookkeeping; the fd itself is
  /// closed by the end-of-pass sweep.
  void drop_conn(Conn& c) {
    if (c.dead) return;
    c.dead = true;
    std::uint64_t live_requests = 0;
    for (const auto& [id, rs] : c.requests)
      if (!rs.failed) ++live_requests;
    stat([&](DaemonStats& s) {
      s.connections_active--;
      s.queue_depth -= c.queue.size();
      s.requests_active -= live_requests;
    });
    c.queue.clear();
    // In-flight slices keep their conn_id; their results are discarded
    // when the lookup fails after the sweep removes the id.
  }

  void sweep_dead_conns() {
    for (auto it = conns.begin(); it != conns.end();) {
      if (!it->second.dead) {
        ++it;
        continue;
      }
      conn_fd.erase(it->second.id);
      ::close(it->second.fd);
      it = conns.erase(it);
    }
  }

  // --- request lifecycle ------------------------------------------------

  void fail_request(Conn& c, std::uint64_t request_id, std::uint64_t index,
                    bool in_eval, const std::string& message) {
    auto it = c.requests.find(request_id);
    if (it == c.requests.end() || it->second.failed) return;
    ReqState& rs = it->second;
    rs.failed = true;
    std::uint64_t cancelled = 0;
    for (auto jit = c.queue.begin(); jit != c.queue.end();) {
      if (jit->request_id == request_id) {
        jit = c.queue.erase(jit);
        ++cancelled;
      } else {
        ++jit;
      }
    }
    rs.outstanding -= static_cast<std::uint32_t>(cancelled);
    const bool erase_now = rs.outstanding == 0;
    // Counters before the frame, same reasoning as the DONE path: once
    // the ERROR frame is on the wire the client may observe stats.
    stat([&](DaemonStats& s) {
      s.requests_active--;
      s.queue_depth -= cancelled;
    });
    ErrorFrame e;
    e.request_id = request_id;
    e.error_index = index;
    e.error_in_eval = in_eval;
    e.message = message;
    queue_out(c, encode_error(e));
    if (erase_now) c.requests.erase(it);
  }

  // --- client events ----------------------------------------------------

  void accept_all(std::size_t listener) {
    for (;;) {
      const int cfd = ::accept(listen_fds[listener], nullptr, nullptr);
      if (cfd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient accept failure: next poll retries
      }
      set_nonblock_cloexec(cfd);
      if (bound[listener].kind == Endpoint::Kind::kTcp) {
        const int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      Conn c;
      c.id = next_conn_id++;
      c.fd = cfd;
      conn_fd[c.id] = cfd;
      conns.emplace(cfd, std::move(c));
      stat([](DaemonStats& s) {
        s.connections_total++;
        s.connections_active++;
      });
    }
  }

  void conn_readable(Conn& c) {
    bool eof = false;
    for (;;) {
      std::byte buf[65536];
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n > 0) {
        c.in.append(std::span<const std::byte>(buf,
                                               static_cast<std::size_t>(n)));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      eof = true;  // clean EOF or hard error: the client is gone
      break;
    }
    try {
      while (!c.dead && !c.closing) {
        auto frame = c.in.pop();
        if (!frame) break;
        client_frame(c, *frame);
      }
    } catch (const std::exception& e) {
      // Unknown kind / corrupt framing: answer once, then hang up.
      ErrorFrame err;
      err.message = e.what();
      queue_out(c, encode_error(err));
      c.closing = true;
      flush(c);
    }
    if (eof) drop_conn(c);
  }

  void client_frame(Conn& c, std::span<const std::byte> frame) {
    const FrameKind kind = frame_kind(frame);  // throws on unknown tag
    if (kind == FrameKind::kHello) {
      const Hello h = decode_hello(frame);
      if (h.version != kProtocolVersion) {
        ErrorFrame e;
        e.message = "protocol version mismatch: client speaks v" +
                    std::to_string(h.version) + ", daemon speaks v" +
                    std::to_string(kProtocolVersion);
        queue_out(c, encode_error(e));
        c.closing = true;
        flush(c);
        return;
      }
      c.helloed = true;
      c.name = h.client_name;
      HelloOk ok;
      ok.daemon_name = opts.name;
      ok.workers = static_cast<std::uint32_t>(workers);
      queue_out(c, encode_hello_ok(ok));
      return;
    }
    MBQ_REQUIRE(c.helloed,
                "client sent frames before a HELLO handshake");
    if (kind == FrameKind::kStatsRequest) {
      queue_out(c, encode_stats_reply(snapshot()));
      return;
    }
    MBQ_REQUIRE(kind == FrameKind::kSubmit,
                "unexpected client frame kind "
                    << static_cast<int>(static_cast<std::uint8_t>(kind)));
    submit(c, frame);
  }

  void submit(Conn& c, std::span<const std::byte> frame) {
    // The id sits at a fixed offset, so even when the embedded request
    // fails to decode the error can name the request it answers.
    std::uint64_t id = kNoRequest;
    if (frame.size() >= 9) {
      id = 0;
      for (int i = 0; i < 8; ++i)
        id |= static_cast<std::uint64_t>(frame[1 + i]) << (8 * i);
    }
    try {
      Submit s = decode_submit(frame);
      id = s.request_id;
      if (c.requests.size() >=
          static_cast<std::size_t>(opts.max_pending_requests)) {
        Busy b;
        b.request_id = id;
        b.message = "connection already has " +
                    std::to_string(c.requests.size()) +
                    " unanswered requests (limit " +
                    std::to_string(opts.max_pending_requests) +
                    "); retry after a DONE/ERROR";
        stat([](DaemonStats& st) { st.busy_rejections++; });
        queue_out(c, encode_busy(b));
        return;
      }
      MBQ_REQUIRE(c.requests.find(id) == c.requests.end(),
                  "request id " << id
                                << " is already in flight on this "
                                   "connection");
      const shard::Request& req = s.request;
      MBQ_REQUIRE(req.begin <= req.end,
                  "request has begin > end: " << req.begin << " > "
                                              << req.end);
      const std::uint64_t space =
          req.kind == shard::TaskKind::kSample
              ? req.points.size() * req.shots
              : req.points.size();
      MBQ_REQUIRE(req.kind != shard::TaskKind::kSample || req.shots >= 1,
                  "sample request needs shots >= 1");
      MBQ_REQUIRE(req.end <= space,
                  "request slice [" << req.begin << ", " << req.end
                                   << ") exceeds its index space of "
                                   << space);

      auto whole = std::make_shared<const shard::Request>(std::move(s.request));
      const std::uint64_t fp = api::spec_fingerprint(whole->workload.spec());

      // Warm-cache accounting: a request is a hit when every one of its
      // (backend, spec, angles) points has been served before.
      bool all_seen = !whole->points.empty();
      std::uint64_t hits = 0;
      std::uint64_t misses = 0;
      for (const qaoa::Angles& pt : whole->points) {
        if (warm_seen.insert(warm_key(fp, whole->backend, pt)).second) {
          all_seen = false;
          ++misses;
        } else {
          ++hits;
        }
      }
      stat([&](DaemonStats& st) {
        st.requests_total++;
        st.warm_hits += hits;
        st.warm_misses += misses;
      });

      const std::uint64_t total = whole->end - whole->begin;
      if (total == 0) {
        Done d;
        d.request_id = id;
        d.warm_hit = all_seen;
        queue_out(c, encode_done(d));
        return;
      }

      const int num_slices = static_cast<int>(
          std::min<std::uint64_t>(total, max_slices));
      const shard::ShardPlan plan(total, num_slices);
      ReqState rs;
      rs.whole = whole;
      rs.fingerprint = fp;
      rs.total_slices = static_cast<std::uint32_t>(num_slices);
      rs.warm_hit = all_seen;
      for (const shard::ShardRange& r : plan.ranges()) {
        Job j;
        j.conn_id = c.id;
        j.request_id = id;
        j.begin = whole->begin + r.begin;
        j.end = whole->begin + r.end;
        j.fingerprint = fp;
        j.whole = whole;
        c.queue.push_back(std::move(j));
        rs.outstanding++;
      }
      c.requests.emplace(id, std::move(rs));
      stat([&](DaemonStats& st) {
        st.requests_active++;
        st.queue_depth += static_cast<std::uint64_t>(num_slices);
      });
    } catch (const std::exception& e) {
      // Request-level failure: this SUBMIT is answered with an error,
      // the connection stays usable.
      ErrorFrame err;
      err.request_id = id;
      err.message = e.what();
      queue_out(c, encode_error(err));
    }
  }

  // --- worker events ----------------------------------------------------

  void worker_readable(Seat& seat) {
    bool dead = false;
    for (;;) {
      std::byte buf[65536];
      const ssize_t n = ::recv(seat.fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n > 0) {
        seat.in.append(std::span<const std::byte>(
            buf, static_cast<std::size_t>(n)));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      dead = true;  // EOF: the worker exited or was killed
      break;
    }
    // At-most-once drain: a response that made it into the pipe before
    // the worker died is a finished slice — deliver it, never re-run it.
    try {
      while (auto frame = seat.in.pop()) worker_response(seat, *frame);
    } catch (const std::exception&) {
      dead = true;  // corrupt stream or unsolicited frame: replace it
    }
    if (dead) worker_died(seat);
  }

  void worker_response(Seat& seat, std::span<const std::byte> frame) {
    MBQ_REQUIRE(seat.busy, "worker sent an unsolicited response frame");
    shard::Response resp = shard::decode_response(frame);
    const Job job = std::move(seat.job);
    const std::uint64_t offset = seat.job_offset;
    seat.busy = false;
    seat.killed = false;
    seat.job = Job{};
    const std::size_t idx = static_cast<std::size_t>(&seat - seats.data());
    stat([&](DaemonStats& s) {
      s.slices_completed++;
      s.workers[idx].busy = false;
      s.workers[idx].slices_done++;
    });

    const auto fit = conn_fd.find(job.conn_id);
    if (fit == conn_fd.end()) return;  // client left mid-request
    Conn& c = conns.at(fit->second);
    if (c.dead) return;
    const auto rit = c.requests.find(job.request_id);
    if (rit == c.requests.end()) return;
    ReqState& rs = rit->second;
    rs.outstanding--;
    if (rs.failed) {
      if (rs.outstanding == 0) c.requests.erase(rit);
      return;
    }

    if (!resp.ok) {
      fail_request(c, job.request_id, resp.error_index + offset,
                   resp.error_in_eval, resp.error_message);
      return;
    }
    const std::uint64_t expected = job.end - job.begin;
    const std::uint64_t got = job.whole->kind == shard::TaskKind::kSample
                                  ? resp.outcomes.size()
                                  : resp.values.size();
    if (got != expected) {
      fail_request(c, job.request_id, job.begin, false,
                   "worker returned " + std::to_string(got) +
                       " items for a slice of " + std::to_string(expected));
      return;
    }

    Slice out;
    out.request_id = job.request_id;
    out.begin = job.begin;
    out.end = job.end;
    out.outcomes = std::move(resp.outcomes);
    out.values = std::move(resp.values);
    queue_out(c, encode_slice(out));
    if (c.dead) return;
    rs.delivered++;
    if (rs.delivered == rs.total_slices) {
      Done d;
      d.request_id = job.request_id;
      d.slices = rs.total_slices;
      d.redispatched = rs.redispatched;
      d.warm_hit = rs.warm_hit;
      // Counters first, frame second: the moment the DONE frame hits the
      // socket the client may query stats, and it must see the request
      // already retired (send() can wake the client before this thread
      // runs another instruction, especially on one core).
      c.requests.erase(job.request_id);
      stat([](DaemonStats& s) { s.requests_active--; });
      queue_out(c, encode_done(d));
    }
  }

  /// Reap, re-queue the unfinished slice (if any), respawn the seat.
  void worker_died(Seat& seat) {
    const std::size_t idx = static_cast<std::size_t>(&seat - seats.data());
    if (seat.pid > 0) {
      ::kill(seat.pid, SIGKILL);  // no-op if it already exited
      int st = 0;
      ::waitpid(seat.pid, &st, 0);
    }
    if (seat.fd >= 0) ::close(seat.fd);
    seat.fd = -1;
    seat.pid = -1;
    seat.in = FrameBuffer{};
    seat.affinity_valid = false;
    seat.killed = false;

    if (seat.busy) {
      seat.busy = false;
      Job job = std::move(seat.job);
      seat.job = Job{};
      stat([&](DaemonStats& s) { s.workers[idx].busy = false; });
      requeue_lost_slice(std::move(job));
    }

    try {
      const shard::SpawnedWorker w = shard::spawn_worker(worker_path);
      seat.pid = w.pid;
      seat.fd = w.fd;
      stat([&](DaemonStats& s) {
        s.worker_respawns++;
        s.workers[idx].pid = w.pid;
        s.workers[idx].respawns++;
      });
    } catch (const std::exception&) {
      // Seat stays out of service; with the whole fleet gone nothing
      // could ever run, so pending requests get errors, not silence.
      stat([&](DaemonStats& s) { s.workers[idx].pid = -1; });
      if (live_seats() == 0) fail_everything("the worker fleet is gone");
    }
  }

  void requeue_lost_slice(Job job) {
    const auto fit = conn_fd.find(job.conn_id);
    if (fit == conn_fd.end()) return;
    Conn& c = conns.at(fit->second);
    if (c.dead) return;
    const auto rit = c.requests.find(job.request_id);
    if (rit == c.requests.end()) return;
    ReqState& rs = rit->second;
    if (rs.failed) {
      rs.outstanding--;
      if (rs.outstanding == 0) c.requests.erase(rit);
      return;
    }
    rs.redispatched++;
    stat([](DaemonStats& s) { s.slices_redispatched++; });
    // A slice that keeps losing its worker will not converge by
    // retrying forever (a too-small worker_timeout_ms, or a workload
    // that crashes the backend): give up loudly.
    if (rs.redispatched > rs.total_slices + 4) {
      rs.outstanding--;
      fail_request(c, job.request_id, job.begin, false,
                   "slice [" + std::to_string(job.begin) + ", " +
                       std::to_string(job.end) + ") was re-dispatched " +
                       std::to_string(rs.redispatched) +
                       " times without completing (workers keep dying or "
                       "timing out)");
      return;
    }
    // Front of the line: it was dispatched once, it goes next.
    c.queue.push_front(std::move(job));
    stat([](DaemonStats& s) { s.queue_depth++; });
  }

  int live_seats() const {
    int n = 0;
    for (const Seat& s : seats)
      if (s.fd >= 0) ++n;
    return n;
  }

  void fail_everything(const std::string& why) {
    for (auto& [fd, c] : conns) {
      if (c.dead) continue;
      std::vector<std::uint64_t> ids;
      ids.reserve(c.requests.size());
      for (const auto& [id, rs] : c.requests)
        if (!rs.failed) ids.push_back(id);
      for (const std::uint64_t id : ids) fail_request(c, id, 0, false, why);
    }
  }

  // --- scheduling -------------------------------------------------------

  Seat* pick_seat(std::uint64_t fingerprint) {
    Seat* any = nullptr;
    for (Seat& s : seats) {
      if (s.fd < 0 || s.busy) continue;
      if (s.affinity_valid && s.affinity == fingerprint) return &s;
      if (any == nullptr) any = &s;
    }
    return any;
  }

  Conn* next_conn_with_work() {
    if (conn_fd.empty()) return nullptr;
    auto it = conn_fd.upper_bound(rr_last);
    for (std::size_t i = 0; i < conn_fd.size(); ++i) {
      if (it == conn_fd.end()) it = conn_fd.begin();
      Conn& c = conns.at(it->second);
      if (!c.dead && !c.queue.empty()) {
        rr_last = c.id;
        return &c;
      }
      ++it;
    }
    return nullptr;
  }

  bool send_job(Seat& seat, const Job& job) {
    const std::size_t idx = static_cast<std::size_t>(&seat - seats.data());
    try {
      const shard::SliceRequest sub =
          shard::rebase_slice(*job.whole, job.begin, job.end);
      shard::write_frame(seat.fd, shard::encode_request(sub.request));
      seat.busy = true;
      seat.job = job;
      seat.job_offset = sub.offset;
      seat.killed = false;
      seat.affinity = job.fingerprint;
      seat.affinity_valid = true;
      if (timeout_ms > 0)
        seat.deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
      stat([&](DaemonStats& s) {
        s.slices_dispatched++;
        s.workers[idx].busy = true;
      });
      return true;
    } catch (const std::exception&) {
      // EPIPE: the worker died between rounds.  The job was never
      // dispatched, so this is a respawn, not a re-dispatch.
      worker_died(seat);
      return false;
    }
  }

  void dispatch() {
    for (;;) {
      Conn* c = next_conn_with_work();
      if (c == nullptr) return;
      Seat* seat = pick_seat(c->queue.front().fingerprint);
      if (seat == nullptr) return;
      Job job = std::move(c->queue.front());
      c->queue.pop_front();
      stat([](DaemonStats& s) { s.queue_depth--; });
      if (!send_job(*seat, job)) {
        if (live_seats() == 0) return;  // fail_everything already ran
        c->queue.push_front(std::move(job));
        stat([](DaemonStats& s) { s.queue_depth++; });
      }
    }
  }

  // --- deadlines --------------------------------------------------------

  int poll_timeout() const {
    if (timeout_ms <= 0) return -1;
    const Clock::time_point now = Clock::now();
    int timeout = -1;
    for (const Seat& s : seats) {
      if (s.fd < 0 || !s.busy || s.killed) continue;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            s.deadline - now)
                            .count();
      const int ms = static_cast<int>(std::max<long long>(0, left));
      if (timeout < 0 || ms < timeout) timeout = ms;
    }
    return timeout;
  }

  void check_deadlines() {
    if (timeout_ms <= 0) return;
    const Clock::time_point now = Clock::now();
    for (Seat& s : seats) {
      if (s.fd < 0 || !s.busy || s.killed) continue;
      if (now < s.deadline) continue;
      // Wedged (or just too slow for the configured budget): kill it;
      // the EOF on its channel re-dispatches the slice and respawns.
      ::kill(s.pid, SIGKILL);
      s.killed = true;
    }
  }

  // --- the loop ---------------------------------------------------------

  void run() {
    while (!stop_flag.load(std::memory_order_acquire)) {
      std::vector<pollfd> pfds;
      pfds.push_back({wake_r, POLLIN, 0});
      for (const int lfd : listen_fds) pfds.push_back({lfd, POLLIN, 0});
      const std::size_t seats_at = pfds.size();
      for (const Seat& s : seats)
        pfds.push_back({s.fd >= 0 ? s.fd : -1, POLLIN, 0});
      const std::size_t conns_at = pfds.size();
      for (const auto& [fd, c] : conns) {
        short ev = POLLIN;
        if (c.out_pos < c.out.size()) ev |= POLLOUT;
        pfds.push_back({fd, ev, 0});
      }

      const int rc = ::poll(pfds.data(),
                            static_cast<nfds_t>(pfds.size()),
                            poll_timeout());
      if (stop_flag.load(std::memory_order_acquire)) return;
      if (rc < 0) {
        if (errno == EINTR) continue;
        return;  // poll itself failing is unrecoverable
      }

      if (pfds[0].revents != 0) {
        std::byte buf[256];
        while (::read(wake_r, buf, sizeof(buf)) > 0) {
        }
      }
      for (std::size_t i = 0; i < listen_fds.size(); ++i)
        if (pfds[1 + i].revents != 0) accept_all(i);
      for (std::size_t i = 0; i < seats.size(); ++i)
        if (pfds[seats_at + i].revents != 0) worker_readable(seats[i]);

      // Snapshot (fd, events) first: handlers mark conns dead but never
      // erase, so the refs stay valid within the pass.
      std::vector<std::pair<int, short>> events;
      for (std::size_t i = conns_at; i < pfds.size(); ++i)
        if (pfds[i].revents != 0)
          events.emplace_back(pfds[i].fd, pfds[i].revents);
      for (const auto& [fd, re] : events) {
        const auto it = conns.find(fd);
        if (it == conns.end() || it->second.dead) continue;
        Conn& c = it->second;
        if ((re & (POLLIN | POLLHUP)) != 0) conn_readable(c);
        if (!c.dead && (re & POLLOUT) != 0) flush(c);
        if (!c.dead && (re & (POLLERR | POLLNVAL)) != 0) drop_conn(c);
      }

      check_deadlines();
      dispatch();
      sweep_dead_conns();
    }
  }

  // --- lifecycle --------------------------------------------------------

  void teardown_sockets() {
    for (const int fd : listen_fds) ::close(fd);
    listen_fds.clear();
    for (const Endpoint& ep : bound)
      if (ep.kind == Endpoint::Kind::kUnix) ::unlink(ep.path.c_str());
    bound.clear();
    if (wake_r >= 0) ::close(wake_r);
    if (wake_w >= 0) ::close(wake_w);
    wake_r = wake_w = -1;
  }

  void teardown_fleet() {
    for (Seat& s : seats) {
      if (s.fd >= 0) ::close(s.fd);
      if (s.pid > 0) {
        ::kill(s.pid, SIGKILL);
        int st = 0;
        ::waitpid(s.pid, &st, 0);
      }
    }
    seats.clear();
  }
};

Daemon::Daemon(DaemonOptions options) : impl_(std::make_unique<Impl>()) {
  impl_->opts = std::move(options);
}

Daemon::~Daemon() {
  try {
    stop();
  } catch (...) {
  }
}

void Daemon::start() {
  Impl& im = *impl_;
  MBQ_REQUIRE(!im.running.load(), "daemon is already running");
  MBQ_REQUIRE(!im.opts.endpoints.empty(),
              "daemon needs at least one endpoint to listen on");
  MBQ_REQUIRE(im.opts.max_pending_requests >= 1,
              "max_pending_requests must be >= 1");
  im.workers = resolve_workers(im.opts.workers);
  im.max_slices = im.opts.max_slices_per_request >= 1
                      ? im.opts.max_slices_per_request
                      : 4 * im.workers;
  im.timeout_ms = im.opts.worker_timeout_ms >= 0 ? im.opts.worker_timeout_ms
                                                 : shard::worker_timeout_ms();
  im.worker_path = shard::resolve_worker_path(im.opts.worker_path);
  MBQ_REQUIRE(!im.worker_path.empty(),
              "mbq_worker executable not found — set MBQ_WORKER or "
              "DaemonOptions::worker_path");

  try {
    for (const std::string& spec : im.opts.endpoints) {
      Endpoint bound;
      const int fd = listen_endpoint(parse_endpoint(spec), bound);
      im.listen_fds.push_back(fd);
      im.bound.push_back(std::move(bound));
    }
    int pipe_fds[2];
    MBQ_REQUIRE(::pipe(pipe_fds) == 0,
                "pipe failed: " << std::strerror(errno));
    im.wake_r = pipe_fds[0];
    im.wake_w = pipe_fds[1];
    set_nonblock_cloexec(im.wake_r);
    set_nonblock_cloexec(im.wake_w);

    im.seats.resize(static_cast<std::size_t>(im.workers));
    im.stats = DaemonStats{};
    im.stats.workers.resize(im.seats.size());
    for (std::size_t i = 0; i < im.seats.size(); ++i) {
      const shard::SpawnedWorker w = shard::spawn_worker(im.worker_path);
      im.seats[i].pid = w.pid;
      im.seats[i].fd = w.fd;
      im.stats.workers[i].pid = w.pid;
    }
  } catch (...) {
    im.teardown_fleet();
    im.teardown_sockets();
    throw;
  }

  im.stop_flag.store(false);
  im.running.store(true);
  im.loop = std::thread([&im] { im.run(); });
}

void Daemon::stop() {
  Impl& im = *impl_;
  if (!im.running.load()) return;
  im.stop_flag.store(true, std::memory_order_release);
  if (im.wake_w >= 0) {
    const std::byte b{1};
    [[maybe_unused]] const ssize_t n = ::write(im.wake_w, &b, 1);
  }
  if (im.loop.joinable()) im.loop.join();
  for (auto& [fd, c] : im.conns) ::close(fd);
  im.conns.clear();
  im.conn_fd.clear();
  im.teardown_fleet();
  im.teardown_sockets();
  im.warm_seen.clear();
  im.running.store(false);
}

bool Daemon::running() const noexcept { return impl_->running.load(); }

const std::vector<Endpoint>& Daemon::endpoints() const {
  return impl_->bound;
}

std::string Daemon::endpoint_string() const {
  MBQ_REQUIRE(!impl_->bound.empty(), "daemon is not listening");
  return impl_->bound.front().to_string();
}

int Daemon::workers() const noexcept { return impl_->workers; }

std::vector<std::int64_t> Daemon::worker_pids() const {
  std::lock_guard<std::mutex> lk(impl_->stats_mu);
  std::vector<std::int64_t> pids;
  pids.reserve(impl_->stats.workers.size());
  for (const WorkerStats& w : impl_->stats.workers) pids.push_back(w.pid);
  return pids;
}

DaemonStats Daemon::stats() const { return impl_->snapshot(); }

}  // namespace mbq::serve
