// Quickstart: MaxCut on a 5-cycle, solved measurement-based.
//
//   1. build the cost Hamiltonian,
//   2. compile QAOA_p into a measurement pattern (the paper's Sec. III),
//   3. execute the adaptive pattern and sample solutions.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "mbq/common/bits.h"
#include "mbq/common/rng.h"
#include "mbq/core/protocol.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/exact.h"
#include "mbq/qaoa/analytic.h"

int main() {
  using namespace mbq;

  // 1. The problem: MaxCut on C5.
  const Graph g = cycle_graph(5);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  std::cout << "Problem: MaxCut on " << g.str() << "\n";

  // 2. Angles: p = 1 optimum from the closed-form landscape.
  const auto p1 = qaoa::maxcut_p1_grid_optimum(g, 64);
  const qaoa::Angles angles({p1.gamma}, {p1.beta});
  std::cout << "p=1 angles: gamma = " << p1.gamma << ", beta = " << p1.beta
            << " (analytic <C> = " << p1.value << ")\n";

  // 3. Compile to a measurement pattern.
  const core::MbqcQaoaSolver solver(cost);
  const auto compiled = solver.compile(angles);
  std::cout << "Compiled pattern: " << compiled.pattern.num_wires()
            << " qubits, " << compiled.pattern.num_entangling() << " CZ, "
            << compiled.pattern.num_measurements()
            << " adaptive measurements\n";

  // 4. Run the protocol.
  Rng rng(1234);
  std::cout << "MBQC <C> = " << solver.expectation(angles, rng) << "\n";
  const auto best = solver.best_of(angles, 64, rng);
  const auto exact = opt::brute_force_maximum(cost);
  std::cout << "best of 64 shots: cut " << best.cost << " via bitstring "
            << bitstring(best.x, g.num_vertices()) << " (optimal "
            << exact.value << ")\n";
  return 0;
}
