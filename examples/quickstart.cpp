// Quickstart: MaxCut on a 5-cycle through the unified backend API.
//
//   1. wrap the problem in an api::Workload,
//   2. open an api::Session on a backend chosen by registry name,
//   3. ask for expectations and samples — compilation, caching, RNG
//      seeding and shot batching are the Session's job.
//
// Build & run:  ./build/examples/quickstart [backend]

#include <iostream>

#include "mbq/api/api.h"
#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/exact.h"
#include "mbq/qaoa/analytic.h"

int main(int argc, char** argv) {
  using namespace mbq;

  // 1. The problem: MaxCut on C5, as a backend-agnostic workload.
  const Graph g = cycle_graph(5);
  const api::Workload workload = api::Workload::maxcut(g);
  std::cout << "Problem: MaxCut on " << g.str() << "\n";

  // 2. Angles: p = 1 optimum from the closed-form landscape.
  const auto p1 = qaoa::maxcut_p1_grid_optimum(g, 64);
  const qaoa::Angles angles({p1.gamma}, {p1.beta});
  std::cout << "p=1 angles: gamma = " << p1.gamma << ", beta = " << p1.beta
            << " (analytic <C> = " << p1.value << ")\n";

  // 3. A session on the measurement-based backend (or any registered
  //    name passed on the command line: statevector, mbqc,
  //    mbqc-classical, clifford, zx, router, router-checked).  Validate
  //    the name up front so a typo yields the list of valid choices, not
  //    a mid-setup exception.
  const std::string backend = argc > 1 ? argv[1] : "mbqc";
  if (!api::BackendRegistry::instance().contains(backend)) {
    std::cerr << "unknown backend '" << backend << "'. Available backends:\n";
    for (const std::string& name : api::BackendRegistry::instance().names())
      std::cerr << "  " << name << "\n";
    return 1;
  }
  api::Session session(workload, backend, api::SessionOptions{.seed = 1234});
  std::cout << "Backend '" << session.backend_name()
            << "': " << session.capabilities().summary << "\n";
  const std::string decline = session.unsupported_reason(angles);
  if (!decline.empty()) {
    std::cerr << "backend '" << backend << "' declines this workload: "
              << decline << "\n";
    return 1;
  }

  const auto compiled = workload.compile_pattern(angles, true);
  std::cout << "Compiled pattern: " << compiled.pattern.num_wires()
            << " qubits, " << compiled.pattern.num_entangling() << " CZ, "
            << compiled.pattern.num_measurements()
            << " adaptive measurements\n";

  // 4. Run the protocol.
  std::cout << "<C> = " << session.expectation(angles) << "\n";
  const api::Shot best = session.best_of(angles, 64);
  const auto exact = opt::brute_force_maximum(workload.cost());
  std::cout << "best of 64 shots: cut " << best.cost << " via bitstring "
            << bitstring(best.x, g.num_vertices()) << " (optimal "
            << exact.value << ")\n";

  // 5. The same workload on every other registered backend.
  std::cout << "\ncross-check over the registry:\n";
  for (const std::string& name : api::BackendRegistry::instance().names()) {
    api::Session other(workload, name);
    const std::string reason = other.unsupported_reason(angles);
    if (!reason.empty()) {
      std::cout << "  " << name << ": skipped (" << reason << ")\n";
      continue;
    }
    std::cout << "  " << name << ": <C> = " << other.expectation(angles)
              << "\n";
  }
  return 0;
}
