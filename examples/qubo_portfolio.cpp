// A small portfolio-selection QUBO solved measurement-based — the
// general-QUBO case of the paper (Eq. 12), with genuine linear AND
// quadratic terms:
//
//   maximize  sum_i r_i x_i  -  q * sum_{i<j} C_ij x_i x_j
//             - lambda (sum_i x_i - B)^2
//
// (expected return, pairwise risk, and a soft budget of B assets).
// Everything runs through api::Session on the "mbqc" backend.

#include <bit>
#include <iostream>
#include <map>

#include "mbq/api/api.h"
#include "mbq/common/bits.h"
#include "mbq/common/rng.h"
#include "mbq/opt/exact.h"
#include "mbq/opt/nelder_mead.h"
#include "mbq/qaoa/qaoa.h"

int main() {
  using namespace mbq;
  const int n = 6;       // assets
  const int budget = 3;  // target count
  Rng rng(99);

  // Synthetic market data.
  std::vector<real> ret(n);
  for (auto& r : ret) r = rng.uniform(0.5, 1.5);
  std::vector<std::pair<Edge, real>> risk;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      risk.push_back({{i, j}, rng.uniform(0.0, 0.6)});

  // QUBO assembly: returns - q*risk - lambda*(sum x - B)^2.  The risk
  // and budget-penalty contributions touch the SAME {i,j} pairs, and
  // CostHamiltonian::qubo rejects duplicate entries rather than summing
  // them silently — so accumulate per pair first.
  const real q = 0.7, lambda = 0.8;
  std::vector<real> linear = ret;
  std::map<std::pair<int, int>, real> pair_coeff;
  for (auto& [e, c] : risk) pair_coeff[{e.u, e.v}] += -q * c;
  // (sum x - B)^2 = sum x_i + 2 sum_{i<j} x_i x_j - 2B sum x_i + B^2.
  for (int i = 0; i < n; ++i) linear[i] -= lambda * (1.0 - 2.0 * budget);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) pair_coeff[{i, j}] += -2.0 * lambda;
  std::vector<std::pair<Edge, real>> quad;
  for (const auto& [pair, c] : pair_coeff)
    quad.push_back({{pair.first, pair.second}, c});
  const auto cost = qaoa::CostHamiltonian::qubo(
      n, linear, quad, -lambda * budget * budget);

  std::cout << "Portfolio QUBO: " << n << " assets, budget " << budget
            << ", " << cost.terms().size() << " Ising terms ("
            << cost.num_terms_of_order(1) << " linear, "
            << cost.num_terms_of_order(2) << " quadratic)\n\n";

  const auto exact = opt::brute_force_maximum(cost);
  std::cout << "exact optimum: value " << exact.value << ", portfolio "
            << bitstring(exact.x, n) << "\n";

  // MBQC-QAOA with the paper's Eq. 10 linear-term gadgets, through the
  // unified API.
  api::Workload workload = api::Workload::qaoa(cost);
  workload.with_linear_style(core::LinearTermStyle::Gadget);
  api::Session session(workload, "mbqc", {.seed = 3});
  opt::NelderMeadOptions nm;
  nm.max_evaluations = 500;
  nm.restarts = 2;
  Rng nm_rng(4);
  const auto res = opt::nelder_mead(session.objective(),
                                    qaoa::Angles::linear_ramp(2).flat(), nm,
                                    nm_rng);
  std::cout << "optimized p=2 MBQC <C> = " << res.value << "\n";

  const api::Shot best =
      session.best_of(qaoa::Angles::from_flat(res.x), 128);
  std::cout << "best of 128 shots: value " << best.cost << ", portfolio "
            << bitstring(best.x, n) << " ("
            << std::popcount(best.x) << " assets)\n";
  std::cout << "\n(The compiled pattern spends one extra ancilla and CZ per "
               "asset per layer\non the linear terms — exactly the Sec. "
               "III-A accounting for general QUBOs.)\n";
  return 0;
}
