// Graph coloring with XY mixers (Sec. V): one-hot encoding, where the
// ring-XY mixer preserves the "exactly one color per vertex" subspace,
// so penalty terms for the encoding constraint are unnecessary.
//
// Problem: max-k-colorable subgraph on a small graph with k = 2 colors:
// maximize the number of properly-colored edges.  Qubit (v, c) = vertex
// v has color c; cost counts edges whose endpoints hold different
// colors; the mixer rotates within each vertex's one-hot block.

#include <bit>
#include <iostream>

#include "mbq/common/bits.h"
#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/runner.h"
#include "mbq/opt/nelder_mead.h"
#include "mbq/qaoa/mixers.h"

int main() {
  using namespace mbq;
  const int k = 2;
  const Graph g = cycle_graph(3);  // odd cycle: not 2-colorable; best = 2
  const int n = g.num_vertices() * k;
  auto qubit = [&](int v, int c) { return v * k + c; };

  std::cout << "max-2-colorable subgraph on C3 (odd cycle; at most 2 of 3 "
               "edges properly colored)\n\n";

  // Cost: for each edge (u,v) and color c, penalize same-color endpoints:
  // proper(u,v) = 1 - sum_c x_{u,c} x_{v,c} on the one-hot subspace.
  qaoa::CostHamiltonian cost(n, 0.0);
  std::vector<std::pair<Edge, real>> quad;
  std::vector<real> linear(n, 0.0);
  for (const Edge& e : g.edges())
    for (int c = 0; c < k; ++c)
      quad.push_back({{qubit(e.u, c), qubit(e.v, c)}, -1.0});
  cost = qaoa::CostHamiltonian::qubo(
      n, linear, quad, static_cast<real>(g.num_edges()));

  // Circuit: prepare each vertex in color 0 (one-hot: |10> per block,
  // reached from the pattern's |+>^n via H then X on the color-0 qubit),
  // then alternate phase layers with ring-XY mixers per vertex block.
  auto build = [&](const qaoa::Angles& a) {
    Circuit circ(n);
    for (int q = 0; q < n; ++q) circ.h(q);
    for (int v = 0; v < g.num_vertices(); ++v) circ.x(qubit(v, 0));
    for (int layer = 0; layer < a.p(); ++layer) {
      for (const auto& t : cost.terms())
        circ.phase_gadget(t.support, 2.0 * a.gamma[layer] * t.coeff);
      for (int v = 0; v < g.num_vertices(); ++v)
        circ.append(qaoa::xy_mixer_ring(n, {qubit(v, 0), qubit(v, 1)},
                                        a.beta[layer]));
    }
    return circ;
  };

  // Classical outer loop: coarse grid over shared (gamma, beta).
  const auto table = cost.cost_table();
  qaoa::Angles best_angles({0.5, 0.5}, {0.5, 0.5});
  real best_exp = -1e300;
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < 9; ++j) {
      const real gamma = -kPi + kTwoPi * (i + 0.5) / 9;
      const real beta = -kPi / 2 + kPi * (j + 0.5) / 9;
      const qaoa::Angles a({gamma, gamma}, {beta, beta});
      Statevector sv = Statevector::all_plus(n);
      build(a).apply_to(sv);
      const real e = sv.expectation_diagonal(table);
      if (e > best_exp) {
        best_exp = e;
        best_angles = a;
      }
    }
  }
  // Refine with Nelder-Mead over all four angles.
  auto objective = [&](const std::vector<real>& v) {
    Statevector sv = Statevector::all_plus(n);
    build(qaoa::Angles::from_flat(v)).apply_to(sv);
    return sv.expectation_diagonal(table);
  };
  opt::NelderMeadOptions nm;
  nm.max_evaluations = 400;
  nm.restarts = 3;
  Rng nm_rng(5);
  const auto refined =
      opt::nelder_mead(objective, best_angles.flat(), nm, nm_rng);
  best_angles = qaoa::Angles::from_flat(refined.x);
  std::cout << "optimized <properly colored> = " << refined.value
            << " (grid seed " << best_exp << ")\n";

  // Compile to MBQC and run.
  const auto cp = core::compile_circuit_tailored(build(best_angles));
  std::cout << "MBQC pattern: " << cp.pattern.num_wires() << " qubits, "
            << cp.pattern.num_measurements() << " measurements\n";

  Rng rng(11);
  const auto r = mbqc::run(cp.pattern, rng);

  // Check the one-hot subspace and extract the best coloring.
  real onehot_mass = 0.0;
  real best_prob = 0.0;
  std::uint64_t best_x = 0;
  auto is_onehot = [&](std::uint64_t x) {
    for (int v = 0; v < g.num_vertices(); ++v) {
      int count = 0;
      for (int c = 0; c < k; ++c) count += get_bit(x, qubit(v, c));
      if (count != 1) return false;
    }
    return true;
  };
  for (std::uint64_t x = 0; x < r.output_state.size(); ++x) {
    const real prob = std::norm(r.output_state[x]);
    if (is_onehot(x)) onehot_mass += prob;
    if (prob > best_prob) {
      best_prob = prob;
      best_x = x;
    }
  }
  std::cout << "one-hot subspace mass after MBQC run: " << onehot_mass
            << " (exactly 1: encoding constraints preserved by the XY "
               "mixer)\n";
  std::cout << "most likely outcome: " << bitstring(best_x, n)
            << "  -> properly colored edges: " << cost.evaluate(best_x)
            << " of " << g.num_edges() << " (optimum 2)\n";
  return 0;
}
