// Graph coloring with XY mixers (Sec. V): one-hot encoding, where the
// ring-XY mixer preserves the "exactly one color per vertex" subspace,
// so penalty terms for the encoding constraint are unnecessary.
//
// Problem: max-k-colorable subgraph on a small graph with k = 2 colors:
// maximize the number of properly-colored edges.  Qubit (v, c) = vertex
// v has color c; cost counts edges whose endpoints hold different
// colors; the mixer rotates within each vertex's one-hot block.
//
// The XY ansatz enters the unified API as a DECLARATIVE ParamCircuit
// workload — a plain gate list whose angles are affine in gamma/beta
// (no std::function anywhere), so it serializes as a WorkloadSpec and
// even shards across worker processes.  The statevector backend drives
// the classical outer loop (cheap exact objective) and the mbqc backend
// executes the optimized angles measurement-based — same workload, two
// registry names.

#include <bit>
#include <iostream>

#include "mbq/api/api.h"
#include "mbq/common/bits.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/grid.h"
#include "mbq/opt/nelder_mead.h"
#include "mbq/qaoa/param_circuit.h"
#include "mbq/shard/protocol.h"

int main() {
  using namespace mbq;
  const int k = 2;
  const Graph g = cycle_graph(3);  // odd cycle: not 2-colorable; best = 2
  const int n = g.num_vertices() * k;
  auto qubit = [&](int v, int c) { return v * k + c; };

  std::cout << "max-2-colorable subgraph on C3 (odd cycle; at most 2 of 3 "
               "edges properly colored)\n\n";

  // Cost: for each edge (u,v) and color c, penalize same-color endpoints:
  // proper(u,v) = 1 - sum_c x_{u,c} x_{v,c} on the one-hot subspace.
  std::vector<std::pair<Edge, real>> quad;
  std::vector<real> linear(n, 0.0);
  for (const Edge& e : g.edges())
    for (int c = 0; c < k; ++c)
      quad.push_back({{qubit(e.u, c), qubit(e.v, c)}, -1.0});
  const auto cost = qaoa::CostHamiltonian::qubo(
      n, linear, quad, static_cast<real>(g.num_edges()));

  // Ansatz: prepare each vertex in color 0 (one-hot: |10> per block,
  // reached from the pattern's |+>^n via H then X on the color-0 qubit),
  // then alternate phase layers with ring-XY mixers per vertex block.
  // Declared once as data for p = 2 layers: the phase-gadget angle of
  // term t in layer k is 2 * coeff_t * gamma[k], an affine Param.
  const int p = 2;
  qaoa::ParamCircuit ansatz(n);
  for (int q = 0; q < n; ++q) ansatz.h(q);
  for (int v = 0; v < g.num_vertices(); ++v) ansatz.x(qubit(v, 0));
  for (int layer = 0; layer < p; ++layer) {
    for (const auto& t : cost.terms())
      ansatz.phase_gadget(t.support,
                          qaoa::Param::gamma(layer, 2.0 * t.coeff));
    for (int v = 0; v < g.num_vertices(); ++v)
      ansatz.xy_ring({qubit(v, 0), qubit(v, 1)}, qaoa::Param::beta(layer));
  }
  const api::Workload workload = api::Workload::parameterized(cost, ansatz);
  std::cout << "declarative ansatz: " << workload.param_circuit().size()
            << " parameterized gates, spec wire format "
            << api::serialize_spec(workload.spec()).size()
            << " bytes, shardable: "
            << (shard::shardable(workload) ? "yes" : "no") << "\n\n";

  // Classical outer loop on the exact statevector backend: coarse grid
  // over shared (gamma, beta), refined with Nelder-Mead over all four.
  api::Session sv_session(workload, "statevector");
  const auto shared_objective = [&](const std::vector<real>& v) {
    return sv_session.expectation(
        qaoa::Angles({v[0], v[0]}, {v[1], v[1]}));
  };
  const auto seed = opt::grid_search(
      shared_objective,
      {{-kPi + kPi / 9, kPi - kPi / 9, 9},
       {-kPi / 2 + kPi / 18, kPi / 2 - kPi / 18, 9}});
  qaoa::Angles best_angles({seed.x[0], seed.x[0]}, {seed.x[1], seed.x[1]});

  opt::NelderMeadOptions nm;
  nm.max_evaluations = 400;
  nm.restarts = 3;
  Rng nm_rng(5);
  const auto refined = opt::nelder_mead(sv_session.objective(),
                                        best_angles.flat(), nm, nm_rng);
  best_angles = qaoa::Angles::from_flat(refined.x);
  std::cout << "optimized <properly colored> = " << refined.value
            << " (grid seed " << seed.value << ", "
            << sv_session.cache_misses() << " distinct angle points)\n";

  // Execute the optimized ansatz measurement-based.
  const auto cp = workload.compile_pattern(best_angles, true);
  std::cout << "MBQC pattern: " << cp.pattern.num_wires() << " qubits, "
            << cp.pattern.num_measurements() << " measurements\n";

  api::Session mbqc_session(workload, "mbqc", {.seed = 11});
  std::cout << "MBQC <properly colored> = "
            << mbqc_session.expectation(best_angles) << "\n";

  // Check the one-hot subspace and extract the best coloring from shots.
  const api::SampleResult result = mbqc_session.sample(best_angles, 256);
  auto is_onehot = [&](std::uint64_t x) {
    for (int v = 0; v < g.num_vertices(); ++v) {
      int count = 0;
      for (int c = 0; c < k; ++c) count += get_bit(x, qubit(v, c));
      if (count != 1) return false;
    }
    return true;
  };
  int onehot = 0;
  for (const api::Shot& s : result.shots) onehot += is_onehot(s.x);
  const api::Shot best = result.best();
  std::cout << "one-hot samples: " << onehot << "/" << result.shots.size()
            << " (all of them: encoding constraints preserved by the XY "
               "mixer)\n";
  std::cout << "best outcome: " << bitstring(best.x, n)
            << "  -> properly colored edges: " << best.cost << " of "
            << g.num_edges() << " (optimum 2)\n";
  return 0;
}
