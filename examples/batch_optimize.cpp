// Batched variational optimization through the unified API:
//
//   1. route every evaluation to the cheapest capable adapter ("router"),
//   2. sweep a coarse angle grid with one expectation_batch() fan-out
//      per chunk (grid_search's BatchObjective overload),
//   3. polish with Nelder-Mead, whose simplex evaluations also arrive
//      batched,
//   4. overlap a couple of follow-up evaluations with expectation_async.
//
// Build & run:  ./build/examples/batch_optimize [backend]

#include <future>
#include <iostream>
#include <vector>

#include "mbq/api/api.h"
#include "mbq/common/bits.h"
#include "mbq/common/parallel.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/exact.h"
#include "mbq/opt/grid.h"
#include "mbq/opt/nelder_mead.h"

int main(int argc, char** argv) {
  using namespace mbq;

  Rng rng(99);
  const Graph g = random_regular_graph(8, 3, rng);
  const api::Workload workload = api::Workload::maxcut(g);
  const std::string backend = argc > 1 ? argv[1] : "router";
  if (!api::BackendRegistry::instance().contains(backend)) {
    std::cerr << "unknown backend '" << backend << "'. Available backends:\n";
    for (const std::string& name : api::BackendRegistry::instance().names())
      std::cerr << "  " << name << "\n";
    return 1;
  }
  api::Session session(workload, backend, {.seed = 424242});
  std::cout << "MaxCut on " << g.str() << " via backend '"
            << session.backend_name() << "' (" << num_threads()
            << " threads)\n";

  // Routing report for one generic point, when the router is in charge.
  if (const auto* router =
          dynamic_cast<const api::RouterBackend*>(&session.backend())) {
    const api::RouteDecision d =
        router->route(workload, qaoa::Angles({0.4}, {0.3}));
    std::cout << "router picks '" << d.backend_name << "' ("
              << d.reason << ")\n";
  }

  // 1. Coarse p=1 grid, fanned out in chunks of 32 points.
  const auto coarse = opt::grid_search(session.batch_objective(),
                                       {{-1.2, 1.2, 16}, {-0.6, 0.6, 16}}, 32);
  std::cout << "coarse grid (256 pts, batched): <C> = " << coarse.value
            << " at gamma = " << coarse.x[0] << ", beta = " << coarse.x[1]
            << "\n";

  // 2. Nelder-Mead polish from the grid optimum; the simplex and shrink
  //    evaluations go through the same batch objective.
  opt::NelderMeadOptions nm;
  nm.max_evaluations = 200;
  nm.initial_step = 0.15;
  Rng nm_rng(7);
  const auto polished =
      opt::nelder_mead(session.batch_objective(), coarse.x, nm, nm_rng);
  std::cout << "nelder-mead polish: <C> = " << polished.value << " after "
            << polished.evaluations << " evaluations (cache: "
            << session.cache_hits() << " hits / " << session.cache_misses()
            << " misses)\n";

  // 3. Overlapped follow-ups: probe two nearby points while sampling.
  const qaoa::Angles best = qaoa::Angles::from_flat(polished.x);
  auto probe_lo = session.expectation_async(
      qaoa::Angles({best.gamma[0] * 0.95}, {best.beta[0]}));
  auto probe_hi = session.expectation_async(
      qaoa::Angles({best.gamma[0] * 1.05}, {best.beta[0]}));
  const api::SampleResult shots = session.sample(best, 512);
  std::cout << "sampled 512 shots at the optimum: best cut "
            << shots.best().cost << " via "
            << bitstring(shots.best().x, g.num_vertices()) << ", mean "
            << shots.mean_cost() << "\n";
  std::cout << "nearby probes (overlapped): " << probe_lo.get() << " / "
            << probe_hi.get() << "\n";

  const auto exact = opt::brute_force_maximum(workload.cost());
  std::cout << "exact maximum cut: " << exact.value << "\n";
  return 0;
}
