// ZX playground: the diagrammatic side of the paper.
//
//  * builds the ZX-diagram of a full QAOA layer,
//  * simplifies it to graph-like form with the Fig. 1 rewrite rules,
//  * extracts the measurement-based resource graph (Sec. II-B / Eq. 5),
//  * and checks semantics numerically at every step.

#include <iostream>

#include "mbq/api/api.h"
#include "mbq/common/table.h"
#include "mbq/graph/generators.h"
#include "mbq/linalg/tensor.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/zx/builder.h"
#include "mbq/zx/simplify.h"
#include "mbq/zx/tensor_eval.h"

int main() {
  using namespace mbq;
  using namespace mbq::zx;

  // One QAOA layer on a triangle, as a state diagram on |+++>.
  const Graph g = complete_graph(3);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const qaoa::Angles a({0.55}, {0.35});
  const Circuit circuit = qaoa::qaoa_circuit(cost, a);

  Diagram d = from_circuit_on_plus(circuit);
  const Diagram original = d;
  std::cout << "QAOA_1 layer on K3 as a ZX diagram: " << d.num_nodes()
            << " nodes, " << d.num_edges() << " edges\n";

  const SimplifyStats stats = to_graph_like(d);
  std::cout << "\nafter to_graph_like():\n";
  Table t({"rewrite", "applications"});
  t.row().add("colour changes (h)").add(stats.color_changes);
  t.row().add("spider fusions (f)").add(stats.fusions);
  t.row().add("HH cancellations (hh)").add(stats.hh_cancellations);
  t.row().add("H self-loops -> pi").add(stats.hadamard_self_loops);
  t.row().add("parallel H-pairs (hopf)").add(stats.parallel_hadamard_pairs);
  t.row().add("self-loop removals").add(stats.self_loop_removals);
  t.print(std::cout);

  std::cout << "graph-like: " << std::boolalpha << is_graph_like(d) << "; "
            << d.count_kind(NodeKind::Z) << " spiders remain\n";

  const real dev = Tensor::proportionality_distance(evaluate(original),
                                                    evaluate(d));
  std::cout << "semantic deviation (up to scalar): " << dev << "\n\n";

  const ExtractedOpenGraph og = extract_open_graph(d);
  std::cout << "extracted MBQC resource graph: " << og.graph.str()
            << ", max degree " << og.graph.max_degree() << "\n";
  std::cout << "spider phases carry the QAOA angles:\n";
  for (int v = 0; v < og.graph.num_vertices(); ++v) {
    if (std::abs(og.vertex_phase[v]) > 1e-9)
      std::cout << "  spider " << v << ": phase " << og.vertex_phase[v]
                << " (deg " << og.graph.degree(v) << ")\n";
  }
  std::cout << "\nThis is the pipeline of the paper: circuit -> ZX -> "
               "graph-like diagram\n== graph state + measurement data "
               "(Secs. II-B and III).\n";

  // The same semantics, packaged as an execution backend: the "zx"
  // registry entry contracts the compiled pattern's diagram and must
  // agree with the gate-model reference.
  const api::Workload workload = api::Workload::maxcut(g);
  api::Session zx_session(workload, "zx");
  api::Session sv_session(workload, "statevector");
  std::cout << "\nbackend cross-check at these angles: zx <C> = "
            << zx_session.expectation(a) << ", statevector <C> = "
            << sv_session.expectation(a) << "\n";
  return 0;
}
