// Serving-daemon client: the same MaxCut workload, executed remotely.
//
// Point MBQ_DAEMON_ENDPOINT at a running mbqd and this program becomes a
// thin client — sampling and expectation batches execute on the daemon's
// shared worker fleet, and the merged results are bit-identical to
// running locally (which this program verifies: it computes both and
// compares exactly).  Without the variable it prints how to start a
// daemon and exits cleanly, so generic example-smoke loops pass without
// serving infrastructure.
//
// Try it (two terminals, or backgrounded):
//
//   ./build/mbqd --listen unix:/tmp/mbqd.sock --workers 2 &
//   MBQ_DAEMON_ENDPOINT=unix:/tmp/mbqd.sock ./build/examples/daemon_client
//   ./build/mbqd --stats --endpoint unix:/tmp/mbqd.sock

#include <cstdlib>
#include <iostream>
#include <vector>

#include "mbq/api/api.h"
#include "mbq/graph/generators.h"

int main() {
  using namespace mbq;

  const char* endpoint = std::getenv("MBQ_DAEMON_ENDPOINT");
  if (endpoint == nullptr || endpoint[0] == '\0') {
    std::cout << "daemon_client: MBQ_DAEMON_ENDPOINT is not set; nothing "
                 "to do.\nStart a daemon and point the variable at it:\n"
                 "  ./build/mbqd --listen unix:/tmp/mbqd.sock &\n"
                 "  MBQ_DAEMON_ENDPOINT=unix:/tmp/mbqd.sock "
              << "./build/examples/daemon_client\n";
    return 0;
  }

  // Hold the endpoint by value and clear the variable: the "local"
  // reference session below must not inherit it, or this comparison
  // would silently become remote-vs-remote.
  const std::string daemon_endpoint = endpoint;
  ::unsetenv("MBQ_DAEMON_ENDPOINT");

  Rng rng(7);
  const Graph g = random_regular_graph(10, 3, rng);
  const api::Workload workload = api::Workload::maxcut(g);
  const qaoa::Angles angles({0.42}, {0.31});
  constexpr int kShots = 256;

  // Remote: every sample/expectation batch ships to the daemon.
  api::Session remote(workload, "mbqc",
                      {.seed = 20240807, .daemon_endpoint = daemon_endpoint});
  std::cout << "sampling " << kShots << " shots of MaxCut on " << g.str()
            << " via daemon " << daemon_endpoint << "\n";
  const api::SampleResult remote_shots = remote.sample(angles, kShots);
  const std::vector<real> remote_es =
      remote.expectation_batch(std::vector<qaoa::Angles>{
          angles, qaoa::Angles({0.1}, {0.2}), qaoa::Angles({0.3}, {0.1})});

  // Local reference: same workload, same seed, no daemon.
  api::Session local(workload, "mbqc", {.seed = 20240807});
  const api::SampleResult local_shots = local.sample(angles, kShots);
  const std::vector<real> local_es =
      local.expectation_batch(std::vector<qaoa::Angles>{
          angles, qaoa::Angles({0.1}, {0.2}), qaoa::Angles({0.3}, {0.1})});

  bool identical = remote_shots.shots.size() == local_shots.shots.size();
  for (std::size_t s = 0; identical && s < local_shots.shots.size(); ++s)
    identical = remote_shots.shots[s].x == local_shots.shots[s].x;
  for (std::size_t i = 0; identical && i < local_es.size(); ++i)
    identical = remote_es[i] == local_es[i];

  std::cout << "best remote shot: cost " << remote_shots.best().cost
            << "  mean " << remote_shots.mean_cost() << "\n"
            << "expectations:";
  for (const real e : remote_es) std::cout << " " << e;
  std::cout << "\nremote == local, bit for bit: "
            << (identical ? "yes" : "NO — this is a bug") << "\n";
  return identical ? 0 : 1;
}
