// Variational MBQC-QAOA on a random 3-regular graph: the full hybrid
// loop (Nelder-Mead over angles, expectation evaluated through the
// measurement-based protocol), compared against simulated annealing and
// the exact optimum.

#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/core/protocol.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/exact.h"
#include "mbq/opt/nelder_mead.h"
#include "mbq/qaoa/analytic.h"
#include "mbq/qaoa/qaoa.h"

int main() {
  using namespace mbq;
  Rng rng(2025);

  const Graph g = random_regular_graph(8, 3, rng);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const auto exact = opt::brute_force_maximum(cost);
  std::cout << "MaxCut on a random 3-regular graph, n = 8, optimum = "
            << exact.value << "\n\n";

  const core::MbqcQaoaSolver solver(cost);
  Table t({"p", "optimized <C> (MBQC)", "approx ratio", "best of 96 shots",
           "NM evaluations"});

  for (int p : {1, 2, 3}) {
    // Objective: expectation THROUGH the measurement-based protocol.
    Rng obj_rng(p);
    auto objective = [&](const std::vector<real>& v) {
      return solver.expectation(qaoa::Angles::from_flat(v), obj_rng);
    };
    std::vector<real> x0;
    if (p == 1) {
      const auto g0 = qaoa::maxcut_p1_grid_optimum(g, 32);
      x0 = {g0.gamma, g0.beta};
    } else {
      x0 = qaoa::Angles::linear_ramp(p).flat();
    }
    opt::NelderMeadOptions nm;
    nm.max_evaluations = 600;
    nm.restarts = 2;
    Rng nm_rng(p * 17);
    const auto res = opt::nelder_mead(objective, x0, nm, nm_rng);

    Rng shot_rng(p * 23);
    const auto best =
        solver.best_of(qaoa::Angles::from_flat(res.x), 96, shot_rng);
    t.row()
        .add(p)
        .add(res.value, 6)
        .add(res.value / exact.value, 4)
        .add(best.cost, 4)
        .add(res.evaluations);
  }
  t.print(std::cout, "variational MBQC-QAOA");

  // Classical baseline.
  opt::AnnealOptions sa_opt;
  sa_opt.sweeps = 100;
  const auto sa = opt::simulated_annealing(cost, sa_opt, rng);
  std::cout << "simulated-annealing baseline (100 sweeps): " << sa.value
            << "\n";
  return 0;
}
