// Variational MBQC-QAOA on a random 3-regular graph: the full hybrid
// loop (Nelder-Mead over angles, objective evaluated through the
// measurement-based backend of the unified API), compared against
// simulated annealing and the exact optimum.

#include <iostream>

#include "mbq/api/api.h"
#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/exact.h"
#include "mbq/opt/nelder_mead.h"
#include "mbq/qaoa/analytic.h"
#include "mbq/qaoa/qaoa.h"

int main() {
  using namespace mbq;
  Rng rng(2025);

  const Graph g = random_regular_graph(8, 3, rng);
  const api::Workload workload = api::Workload::maxcut(g);
  const auto exact = opt::brute_force_maximum(workload.cost());
  std::cout << "MaxCut on a random 3-regular graph, n = 8, optimum = "
            << exact.value << "\n\n";

  Table t({"p", "optimized <C> (MBQC)", "approx ratio", "best of 96 shots",
           "NM evaluations", "pattern cache hits"});

  for (int p : {1, 2, 3}) {
    // Objective: expectation THROUGH the measurement-based protocol; the
    // session's per-angle cache absorbs the optimizer's re-visits.
    api::Session session(workload, "mbqc", {.seed = std::uint64_t(p)});
    const auto objective = session.objective();
    std::vector<real> x0;
    if (p == 1) {
      const auto g0 = qaoa::maxcut_p1_grid_optimum(g, 32);
      x0 = {g0.gamma, g0.beta};
    } else {
      x0 = qaoa::Angles::linear_ramp(p).flat();
    }
    opt::NelderMeadOptions nm;
    nm.max_evaluations = 600;
    nm.restarts = 2;
    Rng nm_rng(p * 17);
    const auto res = opt::nelder_mead(objective, x0, nm, nm_rng);

    const api::Shot best =
        session.best_of(qaoa::Angles::from_flat(res.x), 96);
    t.row()
        .add(p)
        .add(res.value, 6)
        .add(res.value / exact.value, 4)
        .add(best.cost, 4)
        .add(res.evaluations)
        .add(static_cast<int>(session.cache_hits()));
  }
  t.print(std::cout, "variational MBQC-QAOA (api::Session, backend 'mbqc')");

  // Classical baseline.
  opt::AnnealOptions sa_opt;
  sa_opt.sweeps = 100;
  const auto sa = opt::simulated_annealing(workload.cost(), sa_opt, rng);
  std::cout << "simulated-annealing baseline (100 sweeps): " << sa.value
            << "\n";
  return 0;
}
