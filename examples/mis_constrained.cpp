// Maximum independent set with HARD constraints (Sec. IV of the paper):
// the partial mixers only connect feasible states, so no penalty terms
// are needed and every sample is a valid independent set by construction.

#include <bit>
#include <iostream>

#include "mbq/common/bits.h"
#include "mbq/common/rng.h"
#include "mbq/core/mis.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/runner.h"
#include "mbq/opt/exact.h"
#include "mbq/qaoa/mixers.h"

int main() {
  using namespace mbq;
  Rng rng(7);

  const Graph g = random_gnm_graph(7, 9, rng);
  std::cout << "MIS on " << g.str() << "\n";

  // Exact independence number.
  int alpha = 0;
  for (std::uint64_t x = 0; x < (1ULL << g.num_vertices()); ++x)
    if (qaoa::is_independent_set(g, x))
      alpha = std::max(alpha, static_cast<int>(std::popcount(x)));
  std::cout << "alpha(G) = " << alpha
            << ", greedy = " << std::popcount(opt::greedy_mis(g)) << "\n\n";

  const qaoa::Angles angles({0.65, 0.85}, {0.75, 0.45});
  const auto compiled = core::compile_mis_qaoa(g, angles);
  std::cout << "MBQC pattern: " << compiled.pattern.num_wires()
            << " qubits, " << compiled.pattern.num_measurements()
            << " measurements\n";

  int best = 0;
  std::uint64_t best_x = 0;
  int feasible = 0;
  const int shots = 48;
  for (int s = 0; s < shots; ++s) {
    const auto r = mbqc::run(compiled.pattern, rng);
    real u = rng.uniform();
    std::uint64_t x = 0;
    for (std::uint64_t i = 0; i < r.output_state.size(); ++i) {
      u -= std::norm(r.output_state[i]);
      if (u <= 0.0) {
        x = i;
        break;
      }
    }
    feasible += qaoa::is_independent_set(g, x);
    const int size = static_cast<int>(std::popcount(x));
    if (size > best) {
      best = size;
      best_x = x;
    }
  }
  std::cout << "feasible samples: " << feasible << "/" << shots
            << " (hard constraints, so all of them)\n"
            << "best independent set found: size " << best << ", "
            << bitstring(best_x, g.num_vertices()) << "\n";
  return 0;
}
