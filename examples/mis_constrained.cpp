// Maximum independent set with HARD constraints (Sec. IV of the paper):
// the partial mixers only connect feasible states, so no penalty terms
// are needed and every sample is a valid independent set by
// construction.  The constraint-preserving ansatz is a first-class
// api::Workload, so it runs through the same Session/backends as QAOA.

#include <bit>
#include <iostream>

#include "mbq/api/api.h"
#include "mbq/common/bits.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/exact.h"
#include "mbq/qaoa/mixers.h"

int main() {
  using namespace mbq;
  Rng rng(7);

  const Graph g = random_gnm_graph(7, 9, rng);
  std::cout << "MIS on " << g.str() << "\n";

  // Exact independence number.
  int alpha = 0;
  for (std::uint64_t x = 0; x < (1ULL << g.num_vertices()); ++x)
    if (qaoa::is_independent_set(g, x))
      alpha = std::max(alpha, static_cast<int>(std::popcount(x)));
  std::cout << "alpha(G) = " << alpha
            << ", greedy = " << std::popcount(opt::greedy_mis(g)) << "\n\n";

  const api::Workload workload = api::Workload::mis(g);
  const qaoa::Angles angles({0.65, 0.85}, {0.75, 0.45});
  const auto compiled = workload.compile_pattern(angles, true);
  std::cout << "MBQC pattern: " << compiled.pattern.num_wires()
            << " qubits, " << compiled.pattern.num_measurements()
            << " measurements\n";

  api::Session session(workload, "mbqc", {.seed = 7});
  std::cout << "<|set|> through the protocol = "
            << session.expectation(angles) << "\n";

  const api::SampleResult result = session.sample(angles, 128);
  int feasible = 0;
  for (const api::Shot& s : result.shots)
    feasible += qaoa::is_independent_set(g, s.x);
  const api::Shot best = result.best();
  std::cout << "feasible samples: " << feasible << "/"
            << result.shots.size()
            << " (hard constraints, so all of them)\n"
            << "best independent set found: size " << best.cost << ", "
            << bitstring(best.x, g.num_vertices()) << "\n";
  return 0;
}
