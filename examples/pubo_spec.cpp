// A third-order PUBO through the declarative workload pipeline: the new
// CostHamiltonian::pubo frontend expands x_i x_j x_k monomials into the
// paper's per-term gadgets (Sec. II-C "extends to higher-order cost
// functions"), the workload lowers to a serializable WorkloadSpec, the
// router picks the cheapest capable backend per angle point, and — with
// num_processes = 2 — sampling shards across two worker processes with
// merged results contractually bit-identical to the in-process path.
//
// Problem: a tiny weighted MAX-3-SAT-flavoured instance.  Each clause
// over three 0/1 variables contributes its weight when satisfied; the
// "all three true" bonus/penalty terms are the order-3 monomials.

#include <iostream>

#include "mbq/api/api.h"
#include "mbq/common/bits.h"
#include "mbq/opt/grid.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/shard/protocol.h"

int main() {
  using namespace mbq;

  // c(x) = 0.25 + 1.5 x0 x1 x2 - 2 x2 x3 + 0.5 x4 + 0.75 x1 x3 x4
  //        + 1.25 x5 - 0.5 x0 x5   (maximized over x in {0,1}^6)
  const int n = 6;
  const std::vector<qaoa::PuboTerm> terms = {
      {1.5, {0, 1, 2}}, {-2.0, {2, 3}}, {0.5, {4}},
      {0.75, {1, 3, 4}}, {1.25, {5}},   {-0.5, {0, 5}},
  };
  const api::Workload workload = api::Workload::pubo(n, terms, 0.25);
  std::cout << "third-order PUBO on " << n << " variables: max term order "
            << workload.cost().max_order() << ", "
            << workload.cost().terms().size() << " Ising terms after the "
            << "x_i = (1 - Z_i)/2 expansion\n";

  // Exact optimum by brute force, for reference.
  real best_c = -1e300;
  std::uint64_t best_x = 0;
  for (std::uint64_t x = 0; x < (1ULL << n); ++x)
    if (const real c = workload.cost().evaluate(x); c > best_c) {
      best_c = c;
      best_x = x;
    }
  std::cout << "optimum: c(" << bitstring(best_x, n) << ") = " << best_c
            << "\n\n";

  // The workload is pure data: show the spec wire format in action.
  const auto frame = api::serialize_spec(workload.spec());
  std::cout << "WorkloadSpec wire format: " << frame.size()
            << " bytes; shardable: "
            << (shard::shardable(workload) ? "yes" : "no") << "\n";

  // The spec compiler's view of this workload (the default bit-neutral
  // pass set, plus the opt-in passes for the stats only).
  const speccomp::CompiledSpec all = speccomp::compile_spec(
      workload.spec(), speccomp::SpecCompileOptions{true, true, true, true});
  std::cout << "spec compiler: " << all.total(&speccomp::PassStats::terms_merged)
            << " terms merged, "
            << all.total(&speccomp::PassStats::terms_dropped)
            << " zero terms dropped, "
            << all.total(&speccomp::PassStats::gates_fused) << " gates fused, ";
  for (const speccomp::PassStats& s : all.stats)
    if (s.pass == "schedule")
      std::cout << s.wires_deferrable << "/" << s.wires_total
                << " preps deferrable\n";

  // Route report at generic angles: 6 qubits is beyond the zx policy and
  // the pattern is non-Clifford, so the dense reference runs it.
  const qaoa::Angles probe({0.4}, {0.6});
  api::RouterBackend router;
  const api::RouteDecision d = router.route(workload, probe);
  std::cout << "router decision: " << d.backend_name << " (" << d.reason
            << ")\n\n";

  // Coarse grid for decent p=1 angles on the router-backed session,
  // sharded across two worker processes.
  api::SessionOptions opt;
  opt.seed = 17;
  opt.num_processes = 2;
  api::Session session(workload, "router", opt);
  const auto objective = [&](const std::vector<real>& v) {
    return session.expectation(qaoa::Angles({v[0]}, {v[1]}));
  };
  const auto seed_pt = opt::grid_search(
      objective, {{-kPi + kPi / 7, kPi - kPi / 7, 7},
                  {-kPi / 2 + kPi / 14, kPi / 2 - kPi / 14, 7}});
  const qaoa::Angles angles({seed_pt.x[0]}, {seed_pt.x[1]});
  std::cout << "grid-seeded <C> = " << seed_pt.value << " at gamma = "
            << angles.gamma[0] << ", beta = " << angles.beta[0] << "\n";

  const api::SampleResult result = session.sample(angles, 512);
  const api::Shot best = result.best();
  std::cout << "sharded sampling across " << session.shard_workers()
            << " worker processes: best of " << result.shots.size()
            << " shots: c(" << bitstring(best.x, n) << ") = " << best.cost
            << " (optimum " << best_c << ")\n";
  if (session.shard_workers() == 0) {
    // num_processes was explicitly 2: a fallback here means the worker
    // binary was not found, and the bit-identity check below would be
    // vacuous — fail loudly so CI notices.
    std::cout << "ERROR: sharding fell back in-process (mbq_worker not "
                 "found?)\n";
    return 1;
  }

  // The determinism contract: an in-process session with the same seed
  // reproduces the sharded run bit for bit (sample streams depend only
  // on (seed, sample-call index, shot), and this is call 0 for both).
  api::SessionOptions serial_opt;
  serial_opt.seed = 17;
  serial_opt.num_processes = 1;
  api::Session serial(workload, "router", serial_opt);
  const api::SampleResult replay = serial.sample(angles, 512);
  bool identical = replay.shots.size() == result.shots.size();
  for (std::size_t s = 0; identical && s < replay.shots.size(); ++s)
    identical = replay.shots[s].x == result.shots[s].x;
  std::cout << "in-process replay bit-identical: "
            << (identical ? "yes" : "NO") << "\n";
  if (!identical) return 1;

  // The spec compiler's own contract: the default pass set is
  // bit-neutral, so a session over the UNOPTIMIZED workload reproduces
  // the same outcome stream exactly.
  api::Workload unoptimized = workload;
  unoptimized.with_spec_compile(speccomp::SpecCompileOptions::off());
  api::Session raw(unoptimized, "router", serial_opt);
  const api::SampleResult raw_replay = raw.sample(angles, 512);
  bool neutral = raw_replay.shots.size() == result.shots.size();
  for (std::size_t s = 0; neutral && s < raw_replay.shots.size(); ++s)
    neutral = raw_replay.shots[s].x == result.shots[s].x;
  std::cout << "spec-compiler off replay bit-identical: "
            << (neutral ? "yes" : "NO") << "\n";
  return neutral ? 0 : 1;
}
